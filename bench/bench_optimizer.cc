// Cost-based join enumeration + Bloom-filter predicate transfer benchmark
// and self-checks (src/ap/ap_optimizer.cc, src/plan/pt_graph.h).
//
// The acceptance bar this file enforces (exit code != 0 on violation):
//   1. DP never worse: on every generated multi-join query, the bitset-DP
//      join order's modeled cost is <= the greedy order's modeled cost
//      (sifting disabled on both sides so the comparison is purely about
//      join order).
//   2. Sifting pays: on selective join queries where the optimizer applies
//      a Bloom-filter sift, executing the sifted plan moves strictly fewer
//      rows through the executor than the sift-disabled plan — with
//      byte-identical results — and the saving is measurable (>= 5% on at
//      least one query).
//   3. New-shape parity: the row and vectorized executors produce
//      byte-identical fingerprints and identical per-node ExecStats on
//      every plan containing a sifted scan or a bushy join.
//
// `--self-check` runs exactly these checks (the CI optimizer job's fast
// path); without it the optimizer timing benchmarks print too.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ap/ap_optimizer.h"
#include "engine/htap_system.h"
#include "workload/query_generator.h"

namespace {

using namespace htapex;

/// Loaded-data fixture: statistics at the loaded scale so generated
/// queries hit real keys and sift decisions see real cardinalities.
std::unique_ptr<HtapSystem>& SharedSystem() {
  static std::unique_ptr<HtapSystem> system = [] {
    auto s = std::make_unique<HtapSystem>();
    HtapConfig config;
    config.stats_scale_factor = 0.05;
    config.data_scale_factor = 0.05;
    Status st = s->Init(config);
    if (!st.ok()) {
      std::fprintf(stderr, "system init failed: %s\n", st.ToString().c_str());
      s.reset();
    }
    return s;
  }();
  return system;
}

bool HasOp(const PlanNode& node, PlanOp op) {
  if (node.op == op) return true;
  for (const auto& c : node.children) {
    if (HasOp(*c, op)) return true;
  }
  return false;
}

/// A hash join whose build side itself contains a hash join — a shape only
/// the DP enumerator produces (greedy always builds on a base table).
bool HasBushyJoin(const PlanNode& node) {
  if (node.op == PlanOp::kHashJoin && node.children.size() == 2 &&
      HasOp(*node.children[1], PlanOp::kHashJoin)) {
    return true;
  }
  for (const auto& c : node.children) {
    if (HasBushyJoin(*c)) return true;
  }
  return false;
}

/// Every join-bearing workload pattern, several seeds each, plus
/// hand-written star/chain shapes that exercise 4-way enumeration.
std::vector<std::string> JoinQuerySet() {
  std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM lineitem, orders, part, supplier WHERE "
      "l_orderkey = o_orderkey AND l_partkey = p_partkey AND "
      "l_suppkey = s_suppkey AND p_size = 10 AND s_acctbal > 8000",
      "SELECT COUNT(*) FROM region, nation, customer, orders WHERE "
      "r_regionkey = n_regionkey AND n_nationkey = c_nationkey AND "
      "c_custkey = o_custkey AND r_name = 'asia'",
      "SELECT COUNT(*) FROM lineitem, part WHERE l_partkey = p_partkey "
      "AND p_size = 7 AND p_container = 'sm case'",
      "SELECT COUNT(*) FROM customer, nation, orders WHERE o_custkey = "
      "c_custkey AND n_nationkey = c_nationkey AND n_name = 'egypt'",
  };
  const QueryPattern join_patterns[] = {
      QueryPattern::kJoinSmall,        QueryPattern::kJoinLarge,
      QueryPattern::kJoinFunctionPred, QueryPattern::kGroupByAggregate,
      QueryPattern::kJoinStarChain,
  };
  for (QueryPattern pattern : join_patterns) {
    QueryGenerator gen(SharedSystem()->config().stats_scale_factor,
                       0x0b71 ^ static_cast<uint64_t>(pattern));
    for (int i = 0; i < 5; ++i) sqls.push_back(gen.Generate(pattern).sql);
  }
  return sqls;
}

struct BoundSql {
  std::string sql;
  BoundQuery query;
};

std::vector<BoundSql> BindAll(const HtapSystem& system,
                              const std::vector<std::string>& sqls) {
  std::vector<BoundSql> out;
  for (const std::string& sql : sqls) {
    auto bound = system.Bind(sql);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind failed (%s): %s\n", sql.c_str(),
                   bound.status().ToString().c_str());
      continue;
    }
    out.push_back({sql, std::move(*bound)});
  }
  return out;
}

/// Check 1: the DP enumerator's modeled cost is never worse than greedy's.
bool CheckDpNeverWorse(const HtapSystem& system) {
  ApCostParams dp_params;
  dp_params.sift.enabled = false;
  ApCostParams greedy_params;
  greedy_params.enable_dp = false;
  greedy_params.sift.enabled = false;
  ApOptimizer dp_opt(system.catalog(), dp_params);
  ApOptimizer greedy_opt(system.catalog(), greedy_params);

  size_t compared = 0, violations = 0;
  for (const BoundSql& bq : BindAll(system, JoinQuerySet())) {
    if (bq.query.num_tables() < 2) continue;
    auto dp_plan = dp_opt.Plan(bq.query);
    auto greedy_plan = greedy_opt.Plan(bq.query);
    if (!dp_plan.ok() || !greedy_plan.ok()) {
      std::fprintf(stderr, "planning failed: %s\n", bq.sql.c_str());
      ++violations;
      continue;
    }
    ++compared;
    double dp_cost = dp_plan->root->total_cost;
    double greedy_cost = greedy_plan->root->total_cost;
    if (dp_cost > greedy_cost * (1.0 + 1e-9)) {
      std::fprintf(stderr, "DP costlier than greedy (%.4f > %.4f): %s\n",
                   dp_cost, greedy_cost, bq.sql.c_str());
      ++violations;
    }
  }
  std::printf(
      "dp-never-worse: %zu multi-join queries compared, %zu violations "
      "(bar: 0 violations, > 0 queries)\n",
      compared, violations);
  if (violations != 0 || compared == 0) {
    std::fprintf(stderr, "FAIL: DP join enumeration not uniformly better\n");
    return false;
  }
  return true;
}

size_t SumActualRows(const ExecStats& stats) {
  size_t sum = 0;
  for (const auto& [node, rows] : stats.actual_rows) sum += rows;
  return sum;
}

/// Check 2: where a sift is applied, execution moves fewer rows and the
/// result is unchanged.
bool CheckSiftingPays(const HtapSystem& system) {
  ApCostParams sift_on;
  ApCostParams sift_off;
  sift_off.sift.enabled = false;
  ApOptimizer on_opt(system.catalog(), sift_on);
  ApOptimizer off_opt(system.catalog(), sift_off);

  size_t sifted = 0, violations = 0;
  double best_saving = 0.0;
  for (const BoundSql& bq : BindAll(system, JoinQuerySet())) {
    auto on_plan = on_opt.Plan(bq.query);
    auto off_plan = off_opt.Plan(bq.query);
    if (!on_plan.ok() || !off_plan.ok()) continue;
    if (!HasOp(*on_plan->root, PlanOp::kSiftedScan)) continue;
    ++sifted;
    ExecStats on_stats, off_stats;
    auto on_res =
        system.ExecuteWithMode(ExecMode::kRow, *on_plan, bq.query, &on_stats);
    auto off_res =
        system.ExecuteWithMode(ExecMode::kRow, *off_plan, bq.query, &off_stats);
    if (!on_res.ok() || !off_res.ok()) {
      std::fprintf(stderr, "execution failed: %s\n", bq.sql.c_str());
      ++violations;
      continue;
    }
    if (on_res->Fingerprint() != off_res->Fingerprint()) {
      std::fprintf(stderr, "sift changed the result: %s\n", bq.sql.c_str());
      ++violations;
      continue;
    }
    size_t rows_on = SumActualRows(on_stats);
    size_t rows_off = SumActualRows(off_stats);
    if (rows_on >= rows_off) {
      std::fprintf(stderr, "sift moved no fewer rows (%zu >= %zu): %s\n",
                   rows_on, rows_off, bq.sql.c_str());
      ++violations;
      continue;
    }
    double saving = 1.0 - static_cast<double>(rows_on) /
                              static_cast<double>(rows_off);
    best_saving = std::max(best_saving, saving);
    std::printf("  sift: %6zu -> %6zu rows (%4.1f%% saved)  %s\n", rows_off,
                rows_on, saving * 100.0, bq.sql.substr(0, 56).c_str());
  }
  std::printf(
      "sifting-pays: %zu sifted queries, %zu violations, best saving "
      "%.1f%% (bars: > 0 sifted, 0 violations, >= 5%%)\n",
      sifted, violations, best_saving * 100.0);
  if (sifted == 0 || violations != 0 || best_saving < 0.05) {
    std::fprintf(stderr, "FAIL: predicate transfer not measurably paying\n");
    return false;
  }
  return true;
}

/// Check 3: row/vectorized parity on sifted-scan and bushy-join plans.
bool CheckNewShapeParity(const HtapSystem& system) {
  ApOptimizer opt(system.catalog(), ApCostParams{});
  size_t checked = 0, mismatches = 0;
  for (const BoundSql& bq : BindAll(system, JoinQuerySet())) {
    auto plan = opt.Plan(bq.query);
    if (!plan.ok()) continue;
    bool new_shape = HasOp(*plan->root, PlanOp::kSiftedScan) ||
                     HasBushyJoin(*plan->root);
    if (!new_shape) continue;
    ++checked;
    ExecStats row_stats, vec_stats;
    auto row_res =
        system.ExecuteWithMode(ExecMode::kRow, *plan, bq.query, &row_stats);
    auto vec_res = system.ExecuteWithMode(ExecMode::kVectorized, *plan,
                                          bq.query, &vec_stats);
    if (row_res.ok() != vec_res.ok()) {
      std::fprintf(stderr, "executor ok-ness diverged: %s\n", bq.sql.c_str());
      ++mismatches;
      continue;
    }
    if (!row_res.ok()) continue;
    bool same = row_res->Fingerprint() == vec_res->Fingerprint() &&
                row_stats.actual_rows.size() == vec_stats.actual_rows.size();
    for (const auto& [node, rows] : row_stats.actual_rows) {
      auto it = vec_stats.actual_rows.find(node);
      if (it == vec_stats.actual_rows.end() || it->second != rows) {
        same = false;
      }
    }
    if (!same) {
      std::fprintf(stderr, "row/vec mismatch on new shape: %s\n",
                   bq.sql.c_str());
      ++mismatches;
    }
  }
  std::printf(
      "new-shape parity: %zu sifted/bushy plans, %zu mismatches "
      "(bars: > 0 plans, 0 mismatches)\n",
      checked, mismatches);
  if (checked == 0 || mismatches != 0) {
    std::fprintf(stderr, "FAIL: new plan shapes break executor parity\n");
    return false;
  }
  return true;
}

void BM_PlanJoinDp(benchmark::State& state) {
  HtapSystem* system = SharedSystem().get();
  if (system == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  static std::vector<BoundSql> bound = BindAll(*system, JoinQuerySet());
  ApOptimizer opt(system->catalog(), ApCostParams{});
  const BoundSql& bq = bound[static_cast<size_t>(state.range(0)) % bound.size()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.Plan(bq.query));
  }
  state.SetLabel(bq.sql.substr(0, 48));
}
BENCHMARK(BM_PlanJoinDp)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_PlanJoinGreedy(benchmark::State& state) {
  HtapSystem* system = SharedSystem().get();
  if (system == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  static std::vector<BoundSql> bound = BindAll(*system, JoinQuerySet());
  ApCostParams params;
  params.enable_dp = false;
  ApOptimizer opt(system->catalog(), params);
  const BoundSql& bq = bound[static_cast<size_t>(state.range(0)) % bound.size()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.Plan(bq.query));
  }
  state.SetLabel(bq.sql.substr(0, 48));
}
BENCHMARK(BM_PlanJoinGreedy)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_SiftedExecution(benchmark::State& state) {
  HtapSystem* system = SharedSystem().get();
  if (system == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  ApCostParams params;
  params.sift.enabled = state.range(0) != 0;
  ApOptimizer opt(system->catalog(), params);
  auto bound = system->Bind(
      "SELECT COUNT(*) FROM lineitem, part WHERE l_partkey = p_partkey "
      "AND p_size = 7 AND p_container = 'sm case'");
  if (!bound.ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  auto plan = opt.Plan(*bound);
  if (!plan.ok()) {
    state.SkipWithError("plan failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system->ExecuteWithMode(ExecMode::kRow, *plan, *bound));
  }
  state.SetLabel(params.sift.enabled ? "sift on" : "sift off");
}
BENCHMARK(BM_SiftedExecution)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool self_check = false;
  // Strip --self-check before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) {
      self_check = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (SharedSystem() == nullptr) return 1;
  HtapSystem* system = SharedSystem().get();

  if (!self_check) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }

  std::printf("\n=== optimizer self-checks%s ===\n",
              self_check ? " (quick)" : "");
  bool ok = true;
  ok = CheckDpNeverWorse(*system) && ok;
  ok = CheckSiftingPays(*system) && ok;
  ok = CheckNewShapeParity(*system) && ok;
  std::printf("%s\n", ok ? "ALL CHECKS PASSED" : "CHECKS FAILED");
  return ok ? 0 : 1;
}
