// Experiment A2 (paper Section VI-B): effect of the number of retrieved
// vectors K on explanation accuracy.
//
// Paper numbers: K=1 -> 85% accurate, 8% None; K in [2..5] -> 89-91%
// accurate with minimal differences.
//
// Also includes the embedding-source ablation from DESIGN.md: the trained
// router's task-specific embeddings vs an untrained (random-weight) encoder.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace htapex;
using namespace htapex::bench;

GradeCounts RunWorkload(HtapExplainer* explainer,
                        const std::vector<GeneratedQuery>& workload) {
  GradeCounts counts;
  for (const GeneratedQuery& gq : workload) {
    auto result = explainer->Explain(gq.sql);
    if (result.ok()) counts.Add(result->grade.grade);
  }
  return counts;
}

}  // namespace

int main() {
  std::printf("=== A2: retrieval-K sweep (KB=20 entries, 200 test queries) "
              "===\n");
  std::printf("%-4s %-10s %-10s %-8s\n", "K", "accurate", "imprecise", "none");
  for (int k = 1; k <= 5; ++k) {
    ExplainerConfig config;
    config.retrieval_k = k;
    auto fixture = Fixture::Make(config);
    if (fixture == nullptr) return 1;
    auto workload = TestWorkload(*fixture->system);
    GradeCounts counts = RunWorkload(fixture->explainer.get(), workload);
    std::printf("%-4d %5.1f%%     %5.1f%%     %5.1f%%\n", k, counts.accuracy(),
                100.0 * counts.imprecise / counts.total(),
                counts.none_rate());
  }
  std::printf("paper: K=1 -> 85%% (8%% None); K=2..5 -> 89-91%%\n\n");

  // Ablation: untrained encoder (random projection of plan features) vs
  // the trained router. Retrieval quality should visibly degrade.
  std::printf("=== A2b: embedding-source ablation (K=2) ===\n");
  {
    ExplainerConfig config;
    config.retrieval_k = 2;
    auto fixture = Fixture::Make(config);
    if (fixture == nullptr) return 1;
    auto workload = TestWorkload(*fixture->system);
    GradeCounts trained = RunWorkload(fixture->explainer.get(), workload);

    // Untrained: skip router training entirely (fresh random weights).
    auto untrained_fixture = std::make_unique<Fixture>();
    untrained_fixture->system = std::make_unique<HtapSystem>();
    HtapConfig sys_config;
    sys_config.stats_scale_factor = 100.0;
    sys_config.data_scale_factor = 0.0;
    if (!untrained_fixture->system->Init(sys_config).ok()) return 1;
    untrained_fixture->explainer = std::make_unique<HtapExplainer>(
        untrained_fixture->system.get(), config);
    if (!untrained_fixture->explainer->BuildDefaultKnowledgeBase().ok()) {
      return 1;
    }
    GradeCounts untrained =
        RunWorkload(untrained_fixture->explainer.get(), workload);

    std::printf("trained router embeddings:   %.1f%% accurate, %.1f%% none\n",
                trained.accuracy(), trained.none_rate());
    std::printf("untrained (random) encoder:  %.1f%% accurate, %.1f%% none\n",
                untrained.accuracy(), untrained.none_rate());
  }
  return 0;
}
