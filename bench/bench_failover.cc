// Failover benchmark + self-checks for the sharded explain tier
// (src/service/sharded_service.h): kill-during-load resilience with the
// zero-lost-corrections replication guarantee.
//
// Methodology (EXPERIMENTS.md S7): a single dispatcher replays an
// open-loop arrival schedule — the sim clock advances on a fixed cadence
// (one health-monitor beat every kBeatEvery arrivals) regardless of how
// requests fare, so the kill/recovery timeline is pinned to the arrival
// schedule, not to completions. Every third request's result is fed back
// through IncorporateCorrection; every OK ack goes into a shadow multiset
// of sqls that may never be lost. Mid-load the current owner of a probe
// key is killed (crash semantics: backlog failed, no snapshot); the health
// monitor auto-revives it from its own disk and probation probes re-admit
// it. After the load, one more shard is killed WITH its disk wiped and
// rebuilt purely from the replica records its peers hold.
//
// The acceptance bar this file enforces (exit code != 0 on violation):
//   1. Zero lost corrections: after all revivals, the union of every
//      shard's KB equals the shadow exactly — nothing acked is missing
//      and nothing unacked was resurrected, across BOTH a local-disk
//      recovery and a lose-disk replica rebuild.
//   2. Bounded recovery: the killed shard is back to full capacity within
//      probation_after_beats + probation_successes sim-clock beats.
//   3. Merged-histogram p99: the tier-wide end-to-end p99 (bucket-merged
//      across shards and incarnations, no sample loss) of the kill run
//      stays within kP99Factor of the no-fault run.
//   4. Determinism: two same-seed runs produce identical failover event
//      sequences.
//
// `--self-check` runs the reduced CI workload; without it a larger load
// runs and the same checks still gate the exit code.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/exposition.h"
#include "service/sharded_service.h"

namespace {

using namespace htapex;
using namespace htapex::bench;

constexpr int kShards = 4;
constexpr int kBeatEvery = 5;       // arrivals per health-monitor beat
constexpr int kCorrectEvery = 3;    // arrivals per expert correction
constexpr double kP99Factor = 5.0;  // fault-run p99 gate vs clean run
constexpr double kP99SlackMs = 5.0; // absolute slack for micro latencies

// Benches do not link gtest; mirror its TempDir convention.
std::string testing_dir() {
  const char* t = std::getenv("TMPDIR");
  std::string dir = (t != nullptr && *t != '\0') ? t : "/tmp";
  if (dir.back() != '/') dir += '/';
  return dir + "htapex_bench_failover_";
}

/// Non-expired sqls across every live shard KB.
std::multiset<std::string> TierKbSqls(const ShardedExplainService& tier) {
  std::multiset<std::string> sqls;
  for (int s = 0; s < tier.num_shards(); ++s) {
    const KnowledgeBase* kb = tier.shard_kb(s);
    if (kb == nullptr) continue;
    for (int id = 0; id < static_cast<int>(kb->total_entries()); ++id) {
      if (kb->IsExpired(id)) continue;
      const KbEntry* e = kb->RawGet(id);
      if (e != nullptr) sqls.insert(e->sql);
    }
  }
  return sqls;
}

struct RunResult {
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t acked = 0;
  uint64_t lost = 0;     // shadow sqls missing after all revivals
  uint64_t phantom = 0;  // kb sqls never acked
  double p99_ms = 0.0;
  uint64_t recovery_beats = 0;
  FailoverStats failover;
  std::vector<std::string> events;
  bool init_ok = false;
};

/// One full open-loop run. `inject_kill` arms the mid-load crash and the
/// post-load lose-disk rebuild; a clean run skips both (the p99 baseline).
RunResult RunOnce(Fixture* fixture, const std::vector<std::string>& sqls,
                  bool inject_kill, const std::string& dir) {
  std::filesystem::remove_all(dir);
  RunResult out;
  ShardedServiceConfig config;
  config.num_shards = kShards;
  config.data_dir = dir;
  config.probation_after_beats = 2;
  config.probation_successes = 2;
  // The big mid-load crash is scripted; the kill runs additionally arm a
  // low-rate shard.kill draw so some requests lose their shard MID-dispatch
  // and fail over with their remaining budget (deterministic per key).
  config.faults = inject_kill ? "shard.kill:p=0.02" : "off";
  config.shard.num_workers = 1;

  ExplainerConfig ec;
  ec.faults = "off";  // shard pipelines run clean; only tier points fire
  ShardedExplainService tier(fixture->system.get(), ec, config);
  Status st = tier.InitFrom(fixture->explainer->router());
  if (!st.ok()) {
    std::fprintf(stderr, "tier init failed: %s\n", st.ToString().c_str());
    return out;
  }
  st = tier.BuildDefaultKnowledgeBase();
  if (!st.ok()) {
    std::fprintf(stderr, "kb build failed: %s\n", st.ToString().c_str());
    return out;
  }
  out.init_ok = true;

  std::multiset<std::string> shadow = TierKbSqls(tier);
  const size_t kill_at = sqls.size() / 3;

  for (size_t i = 0; i < sqls.size(); ++i) {
    if (inject_kill && i == kill_at) {
      // Kill whichever shard owns this arrival's key: guaranteed to be a
      // shard with load on it, and a pure function of the workload.
      auto key = tier.KeyForSql(sqls[i]);
      if (key.ok()) tier.KillShard(tier.router()->Owner(*key));
    }
    auto r = tier.Explain(sqls[i]);
    if (!r.ok()) {
      ++out.failed;
    } else {
      ++out.completed;
      if (i % kCorrectEvery == 0) {
        Status ack = tier.IncorporateCorrection(*r);
        if (ack.ok()) {
          ++out.acked;
          shadow.insert(r->result.outcome.sql);
        }
      }
    }
    if (i % kBeatEvery == kBeatEvery - 1) tier.Heartbeat();
  }
  // Drain the health monitor until the ring is whole again.
  for (int beat = 0; beat < 32 && tier.router()->NumLive() < kShards;
       ++beat) {
    tier.Heartbeat();
  }

  if (inject_kill) {
    // Lose-disk drill: crash one more shard, wipe its directory, rebuild
    // it purely from the replica records its peers hold, re-admit it.
    auto key = tier.KeyForSql(sqls[0]);
    if (key.ok()) {
      int victim = tier.router()->Owner(*key);
      tier.KillShard(victim);
      Status revived = tier.ReviveShard(victim, /*lose_disk=*/true);
      if (!revived.ok()) {
        std::fprintf(stderr, "lose-disk revive failed: %s\n",
                     revived.ToString().c_str());
        out.init_ok = false;
      }
    }
    for (int beat = 0; beat < 32 && tier.router()->NumLive() < kShards;
         ++beat) {
      tier.Heartbeat();
    }
  }

  std::multiset<std::string> recovered = TierKbSqls(tier);
  for (const std::string& sql : shadow) {
    if (recovered.count(sql) < shadow.count(sql)) ++out.lost;
  }
  for (const std::string& sql : recovered) {
    if (shadow.count(sql) < recovered.count(sql)) ++out.phantom;
  }

  ShardedServiceStats stats = tier.Stats();
  out.p99_ms = stats.merged.end_to_end.p99_ms;
  out.recovery_beats = stats.failover.last_recovery_beats;
  out.failover = stats.failover;
  out.events = tier.EventLog();

  // The merged exposition must still round-trip with shards having died
  // and come back.
  auto parsed = ParseExposition(tier.ExpositionText());
  if (!parsed.ok() || parsed->empty()) {
    std::fprintf(stderr, "merged exposition failed to round-trip: %s\n",
                 parsed.ok() ? "empty" : parsed.status().ToString().c_str());
    out.init_ok = false;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
  }
  const int requests = self_check ? 90 : 240;

  ExplainerConfig config;
  config.faults = "off";
  std::unique_ptr<Fixture> fixture = Fixture::Make(std::move(config));
  if (fixture == nullptr) return 1;

  std::vector<std::string> sqls;
  for (const GeneratedQuery& q :
       TestWorkload(*fixture->system, requests, 0xFA17)) {
    sqls.push_back(q.sql);
  }

  std::printf("--- failover: %d shards, %zu open-loop arrivals, beat every "
              "%d ---\n",
              kShards, sqls.size(), kBeatEvery);

  std::string base = testing_dir();
  RunResult clean = RunOnce(fixture.get(), sqls, false, base + "clean");
  RunResult fault = RunOnce(fixture.get(), sqls, true, base + "fault");
  RunResult fault2 = RunOnce(fixture.get(), sqls, true, base + "fault2");

  bool ok = clean.init_ok && fault.init_ok && fault2.init_ok;

  std::printf("%-10s %9s %6s %6s %5s %8s %9s %8s %9s\n", "run", "completed",
              "failed", "acked", "lost", "phantom", "p99(ms)", "recov",
              "failovers");
  auto row = [](const char* name, const RunResult& r) {
    std::printf("%-10s %9llu %6llu %6llu %5llu %8llu %8.3f %8llu %9llu\n",
                name, static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.acked),
                static_cast<unsigned long long>(r.lost),
                static_cast<unsigned long long>(r.phantom), r.p99_ms,
                static_cast<unsigned long long>(r.recovery_beats),
                static_cast<unsigned long long>(r.failover.failovers));
  };
  row("no-fault", clean);
  row("kill-load", fault);
  row("kill-rep", fault2);

  // 1. Zero lost corrections (and no phantom resurrections).
  if (fault.lost != 0 || fault.phantom != 0) {
    std::fprintf(stderr,
                 "FAIL: corrections lost=%llu phantom=%llu after revival\n",
                 static_cast<unsigned long long>(fault.lost),
                 static_cast<unsigned long long>(fault.phantom));
    ok = false;
  }
  if (fault.acked == 0 || fault.failover.kills < 2 ||
      fault.failover.replications == 0) {
    std::fprintf(stderr, "FAIL: scenario did not exercise the guarantee "
                         "(acked=%llu kills=%llu replications=%llu)\n",
                 static_cast<unsigned long long>(fault.acked),
                 static_cast<unsigned long long>(fault.failover.kills),
                 static_cast<unsigned long long>(fault.failover.replications));
    ok = false;
  }

  // 2. Bounded recovery: dead -> probation (probation_after_beats) ->
  //    healthy (probation_successes probes), plus one beat of slack.
  const uint64_t bound = 2 + 2 + 1;
  if (fault.failover.readmissions == 0 || fault.recovery_beats == 0 ||
      fault.recovery_beats > bound) {
    std::fprintf(stderr,
                 "FAIL: recovery took %llu beats (bound %llu, "
                 "readmissions=%llu)\n",
                 static_cast<unsigned long long>(fault.recovery_beats),
                 static_cast<unsigned long long>(bound),
                 static_cast<unsigned long long>(fault.failover.readmissions));
    ok = false;
  }

  // 3. Merged p99 within a gated factor of the clean run (with absolute
  //    slack: these are sub-millisecond plan-only latencies).
  double gate = clean.p99_ms * kP99Factor + kP99SlackMs;
  if (fault.p99_ms > gate) {
    std::fprintf(stderr, "FAIL: kill-run p99 %.3fms exceeds gate %.3fms "
                         "(clean %.3fms)\n",
                 fault.p99_ms, gate, clean.p99_ms);
    ok = false;
  }

  // 4. Same seed, same schedule => identical failover event sequence.
  if (fault.events != fault2.events) {
    std::fprintf(stderr,
                 "FAIL: event logs diverged across same-seed runs "
                 "(%zu vs %zu events)\n",
                 fault.events.size(), fault2.events.size());
    for (size_t i = 0;
         i < std::max(fault.events.size(), fault2.events.size()); ++i) {
      std::fprintf(stderr, "  [%zu] %s | %s\n", i,
                   i < fault.events.size() ? fault.events[i].c_str() : "-",
                   i < fault2.events.size() ? fault2.events[i].c_str() : "-");
    }
    ok = false;
  }
  if (clean.failed != 0) {
    std::fprintf(stderr, "FAIL: %llu requests failed with no fault armed\n",
                 static_cast<unsigned long long>(clean.failed));
    ok = false;
  }

  std::filesystem::remove_all(base + "clean");
  std::filesystem::remove_all(base + "fault");
  std::filesystem::remove_all(base + "fault2");

  if (ok) {
    std::printf("acceptance: zero lost corrections (local + lose-disk), "
                "recovery <= %llu beats, p99 within %.1fx, deterministic "
                "events — PASS\n",
                static_cast<unsigned long long>(bound), kP99Factor);
  }
  return ok ? 0 : 1;
}
