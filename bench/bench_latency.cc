// Experiment L1 (paper Section VI-B): end-to-end response-time breakdown.
//
// Paper: smart-router encoding < 0.1 ms; knowledge-base search < 0.1 ms at
// 20 entries; LLM thinking <= 2 s; generation ~10 s. Router encoding and KB
// search are *measured* wall time here (google-benchmark); the LLM times
// come from the simulated-model clock (no hosted LLM in this build).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "common/string_util.h"

namespace {

using namespace htapex;
using namespace htapex::bench;

std::unique_ptr<Fixture>& SharedFixture() {
  static std::unique_ptr<Fixture> fixture = Fixture::Make();
  return fixture;
}

constexpr const char* kQuery =
    "SELECT COUNT(*) FROM customer, nation, orders "
    "WHERE o_custkey = c_custkey AND n_nationkey = c_nationkey "
    "AND n_name = 'egypt' AND c_mktsegment = 'machinery' "
    "AND o_orderstatus = 'p'";

void BM_RouterEncode(benchmark::State& state) {
  Fixture* f = SharedFixture().get();
  auto query = f->system->Bind(kQuery);
  auto plans = f->system->PlanBoth(*query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->explainer->router().Embed(*plans));
  }
}
BENCHMARK(BM_RouterEncode)->Unit(benchmark::kMicrosecond);

void BM_KbSearchTop2(benchmark::State& state) {
  Fixture* f = SharedFixture().get();
  auto query = f->system->Bind(kQuery);
  auto plans = f->system->PlanBoth(*query);
  std::vector<double> embedding = f->explainer->router().Embed(*plans);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f->explainer->knowledge_base().Retrieve(embedding, 2));
  }
}
BENCHMARK(BM_KbSearchTop2)->Unit(benchmark::kMicrosecond);

void BM_EndToEndPipeline(benchmark::State& state) {
  // Wall time of everything except the (simulated) LLM call itself.
  Fixture* f = SharedFixture().get();
  for (auto _ : state) {
    auto result = f->explainer->Explain(kQuery);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EndToEndPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (SharedFixture() == nullptr) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // The component table the paper reports.
  Fixture* f = SharedFixture().get();
  auto result = f->explainer->Explain(kQuery);
  if (!result.ok()) return 1;
  std::printf("\n=== L1: end-to-end response-time components ===\n");
  std::printf("%-28s %-12s %s\n", "component", "this build", "paper");
  std::printf("%-28s %-12s %s\n", "router encoding (measured)",
              FormatMillis(result->router_encode_ms).c_str(), "< 0.1 ms");
  std::printf("%-28s %-12s %s\n", "KB search @20 (measured)",
              FormatMillis(result->retrieval.search_ms).c_str(), "< 0.1 ms");
  std::printf("%-28s %-12s %s\n", "LLM thinking (simulated)",
              FormatMillis(result->generation.timing.thinking_ms).c_str(),
              "<= 2 s");
  std::printf("%-28s %-12s %s\n", "LLM generation (simulated)",
              FormatMillis(result->generation.timing.generation_ms).c_str(),
              "~10 s");
  std::printf("%-28s %-12s %s\n", "end to end",
              FormatMillis(result->end_to_end_ms()).c_str(), "~12 s");
  std::printf("prompt tokens: %d, output tokens: %d\n",
              result->generation.timing.prompt_tokens,
              result->generation.timing.output_tokens);
  return 0;
}
