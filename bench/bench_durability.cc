// Durability benchmark: WAL overhead on the mutation path and recovery
// time as a function of log length.
//
// Part 1 — mutation throughput. The same insert workload runs against a
// plain in-memory KnowledgeBase and against durable configurations
// (fsync every record, group fsync every 64, and group fsync with
// snapshot-every-256 rotation). Reports wall time, records/s, the
// overhead factor over the in-memory baseline, and WAL bytes written.
//
// Part 2 — recovery. Builds WALs of increasing length, then measures a
// cold Attach (snapshot restore + full replay) and reports recovery time
// and replay rate.
//
// Acceptance (self-checked, non-zero exit on violation):
//  - every durable mutation commits and is counted in the WAL metrics;
//  - after each run a cold recovery reconstructs the exact KB state
//    (entry count, tombstones and sequence counter);
//  - group-commit (fsync_every_n=64) costs strictly less than fsync-per-
//    record, and recovery time grows with WAL length — the trends the
//    EXPERIMENTS.md table quotes.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/string_util.h"
#include "durable/durable_kb.h"
#include "vectordb/knowledge_base.h"

namespace {

using namespace htapex;

constexpr int kDim = 16;  // the paper's plan-pair encoding width

std::string BenchDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("htapex_bench_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

KbEntry MakeEntry(int i) {
  KbEntry e;
  e.sql = StrFormat("SELECT COUNT(*) FROM orders WHERE o_custkey = %d", i);
  e.embedding.assign(kDim, 0.0);
  for (int d = 0; d < kDim; ++d) {
    e.embedding[d] = ((i * 31 + d * 17) % 97) / 97.0;
  }
  e.tp_plan_json = "{\"op\":\"IndexScan\",\"rows\":1,\"cost\":4.2}";
  e.ap_plan_json = "{\"op\":\"SeqScan\",\"rows\":150000,\"cost\":8812.0}";
  e.faster = (i % 3 == 0) ? EngineKind::kAp : EngineKind::kTp;
  e.tp_latency_ms = 0.2 + (i % 10);
  e.ap_latency_ms = 40.0 + (i % 25);
  // Realistic explanation payload (~200 bytes), the bulk of a WAL record.
  e.expert_explanation = StrFormat(
      "Query %d touches a single customer key; the row-store index scan "
      "resolves it in microseconds while the column store must material"
      "ize the full predicate scan, so TP wins until selectivity grows "
      "beyond the crossover point.",
      i);
  return e;
}

struct RunResult {
  double wall_ms = 0.0;
  uint64_t wal_bytes = 0;
  bool ok = false;
};

/// Applies `n` insert mutations; durability per the options (empty dir =
/// in-memory baseline).
RunResult RunMutations(int n, const std::string& dir, int fsync_every_n,
                       int snapshot_every_n) {
  RunResult r;
  KnowledgeBase kb(kDim);
  DurableKnowledgeBase* durable = nullptr;
  std::unique_ptr<DurableKnowledgeBase> owned;
  if (!dir.empty()) {
    DurabilityOptions opt;
    opt.dir = dir;
    opt.fsync_every_n = fsync_every_n;
    opt.snapshot_every_n = snapshot_every_n;
    owned = std::make_unique<DurableKnowledgeBase>(opt);
    if (!owned->Attach(&kb).ok()) return r;
    durable = owned.get();
  }
  WallTimer timer;
  for (int i = 0; i < n; ++i) {
    if (!kb.Insert(MakeEntry(i)).ok()) return r;
  }
  r.wall_ms = timer.ElapsedMillis();
  if (durable != nullptr) {
    if (durable->metrics()->wal_appends.Value() !=
        static_cast<uint64_t>(n)) {
      return r;
    }
    r.wal_bytes = durable->metrics()->wal_bytes.Value();
  }
  r.ok = true;
  return r;
}

/// Cold recovery of `dir`; verifies the recovered state matches (count,
/// sequence counter) and returns the recovery wall time, or < 0 on error.
double RecoverAndVerify(const std::string& dir, size_t want_entries) {
  KnowledgeBase kb(kDim);
  DurabilityOptions opt;
  opt.dir = dir;
  DurableKnowledgeBase durable(opt);
  auto info = durable.Attach(&kb);
  if (!info.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 info.status().ToString().c_str());
    return -1.0;
  }
  if (kb.total_entries() != want_entries ||
      kb.next_sequence() != static_cast<int64_t>(want_entries)) {
    std::fprintf(stderr, "recovered %zu entries (seq %lld), want %zu\n",
                 kb.total_entries(),
                 static_cast<long long>(kb.next_sequence()), want_entries);
    return -1.0;
  }
  return info->recovery_ms;
}

}  // namespace

int main() {
  constexpr int kMutations = 2000;
  bool pass = true;

  std::printf("=== WAL overhead (%d inserts, %d-dim entries) ===\n",
              kMutations, kDim);
  std::printf("%-28s %10s %12s %10s %10s\n", "mode", "wall ms", "records/s",
              "overhead", "WAL MiB");

  RunResult base = RunMutations(kMutations, "", 0, 0);
  if (!base.ok) {
    std::fprintf(stderr, "FAIL: in-memory baseline run errored\n");
    return 1;
  }
  std::printf("%-28s %10.1f %12.0f %10s %10s\n", "in-memory (no WAL)",
              base.wall_ms, kMutations / base.wall_ms * 1000.0, "1.00x", "-");

  struct Mode {
    const char* name;
    int fsync_every_n;
    int snapshot_every_n;
  };
  const Mode modes[] = {
      {"WAL fsync=1", 1, 0},
      {"WAL fsync=64", 64, 0},
      {"WAL fsync=64 + snap=256", 64, 256},
  };
  double fsync1_ms = 0.0;
  double fsync64_ms = 0.0;
  for (size_t mi = 0; mi < sizeof(modes) / sizeof(modes[0]); ++mi) {
    const Mode& m = modes[mi];
    std::string dir = BenchDir("mode_" + std::to_string(mi));
    RunResult r = RunMutations(kMutations, dir, m.fsync_every_n,
                               m.snapshot_every_n);
    if (!r.ok) {
      std::fprintf(stderr, "FAIL: durable run '%s' errored\n", m.name);
      return 1;
    }
    std::printf("%-28s %10.1f %12.0f %9.2fx %10.2f\n", m.name, r.wall_ms,
                kMutations / r.wall_ms * 1000.0, r.wall_ms / base.wall_ms,
                r.wal_bytes / (1024.0 * 1024.0));
    double rec = RecoverAndVerify(dir, kMutations);
    if (rec < 0) {
      std::fprintf(stderr, "FAIL: post-run recovery check for '%s'\n",
                   m.name);
      return 1;
    }
    if (m.fsync_every_n == 1) fsync1_ms = r.wall_ms;
    if (m.fsync_every_n == 64 && m.snapshot_every_n == 0) {
      fsync64_ms = r.wall_ms;
    }
    std::filesystem::remove_all(dir);
  }
  if (fsync64_ms >= fsync1_ms) {
    std::fprintf(stderr,
                 "FAIL: group commit (%.1f ms) not cheaper than fsync-per-"
                 "record (%.1f ms)\n",
                 fsync64_ms, fsync1_ms);
    pass = false;
  }

  std::printf("\n=== recovery time vs WAL length ===\n");
  std::printf("%-14s %12s %14s\n", "WAL records", "recover ms", "records/s");
  double prev_ms = 0.0;
  std::vector<int> lengths = {1000, 4000, 16000};
  std::vector<double> recover_ms;
  for (int n : lengths) {
    std::string dir = BenchDir("recovery_" + std::to_string(n));
    RunResult r = RunMutations(n, dir, 64, 0);
    if (!r.ok) {
      std::fprintf(stderr, "FAIL: WAL build for n=%d errored\n", n);
      return 1;
    }
    double rec = RecoverAndVerify(dir, static_cast<size_t>(n));
    if (rec < 0) return 1;
    recover_ms.push_back(rec);
    std::printf("%-14d %12.1f %14.0f\n", n, rec, n / rec * 1000.0);
    std::filesystem::remove_all(dir);
    prev_ms = rec;
  }
  (void)prev_ms;
  // Replay work scales with log length; allow noise at the short end but
  // the 16x-longer log must cost measurably more than the shortest.
  if (recover_ms.back() <= recover_ms.front()) {
    std::fprintf(stderr,
                 "FAIL: recovery of %d records (%.1f ms) not slower than "
                 "%d records (%.1f ms)\n",
                 lengths.back(), recover_ms.back(), lengths.front(),
                 recover_ms.front());
    pass = false;
  }

  std::printf("\n%s\n", pass ? "bench_durability: PASS" : "bench_durability: FAIL");
  return pass ? 0 : 1;
}
