// Experiment U1 (paper Section VI-C): the participant study, simulated.
//
// Paper numbers — group without the LLM explanation: 8.2 min average, 60%
// correct, difficulty 8.5/10 for raw plans; all initially-wrong
// participants corrected their understanding after reading the LLM output.
// Group with the LLM explanation: 3.5 min average, 100% correct, LLM
// explanation difficulty 3/10.
#include <cstdio>

#include "bench/bench_common.h"
#include "workload/study_sim.h"

namespace {

constexpr const char* kExample1 =
    "SELECT COUNT(*) FROM customer, nation, orders "
    "WHERE SUBSTRING(c_phone, 1, 2) IN ('20','40','22','30','39','42','21') "
    "AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
    "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
    "AND n_nationkey = c_nationkey";

}  // namespace

int main() {
  using namespace htapex;
  using namespace htapex::bench;

  auto fixture = Fixture::Make();
  if (fixture == nullptr) return 1;
  auto example = fixture->explainer->Explain(kExample1);
  if (!example.ok()) return 1;

  ParticipantStudy study(/*seed=*/2026, /*group_size=*/12);
  StudyReport report = study.Run(*example);

  std::printf("=== U1: participant study (simulated, %d per group) ===\n",
              report.with_llm.participants);
  std::printf("%-38s %-12s %s\n", "metric", "this build", "paper");
  std::printf("%-38s %-12.1f %s\n", "no-LLM group: avg minutes",
              report.without_llm.avg_minutes, "8.2");
  std::printf("%-38s %-12.0f %s\n", "no-LLM group: correct (%)",
              100.0 * report.without_llm.correct_fraction, "60");
  std::printf("%-38s %-12.1f %s\n", "no-LLM group: plan difficulty (0-10)",
              report.without_llm.avg_difficulty_plans, "8.5");
  std::printf("%-38s %-12.0f %s\n", "corrected after explanation (%)",
              100.0 * report.corrected_after_explanation, "100");
  std::printf("%-38s %-12.1f %s\n", "LLM group: avg minutes",
              report.with_llm.avg_minutes, "3.5");
  std::printf("%-38s %-12.0f %s\n", "LLM group: correct (%)",
              100.0 * report.with_llm.correct_fraction, "100");
  std::printf("%-38s %-12.1f %s\n", "explanation difficulty (0-10)",
              report.with_llm.avg_difficulty_explanation, "3");

  bool shape_ok =
      report.with_llm.avg_minutes < report.without_llm.avg_minutes &&
      report.with_llm.correct_fraction > report.without_llm.correct_fraction &&
      report.with_llm.avg_difficulty_explanation <
          report.without_llm.avg_difficulty_plans;
  std::printf("\nshape (LLM group faster, more correct, lower difficulty): "
              "%s\n", shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
