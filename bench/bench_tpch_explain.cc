// Extension experiment M3: the explainer on the adapted TPC-H benchmark
// suite — a realism check beyond the synthetic workload. For each adapted
// TPC-H query: both engines' modelled latencies at SF=100, the faster
// engine, and the RAG explanation with its expert grade.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "workload/tpch_queries.h"

int main() {
  using namespace htapex;
  using namespace htapex::bench;

  auto fixture = Fixture::Make();
  if (fixture == nullptr) return 1;

  std::printf("=== M3: explaining the adapted TPC-H suite (SF=100 model) "
              "===\n");
  std::printf("%-4s %-10s %-10s %-7s %-9s %s\n", "id", "TP", "AP", "faster",
              "grade", "primary factor");
  GradeCounts counts;
  for (const TpchQuery& q : AdaptedTpchQueries()) {
    auto result = fixture->explainer->Explain(q.sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.id.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    counts.Add(result->grade.grade);
    std::printf("%-4s %-10s %-10s %-7s %-9s %s\n", q.id.c_str(),
                FormatMillis(result->outcome.tp_latency_ms).c_str(),
                FormatMillis(result->outcome.ap_latency_ms).c_str(),
                EngineName(result->outcome.faster),
                ExplanationGradeName(result->grade.grade),
                PerfFactorId(result->truth.primary));
  }
  std::printf("\n%d/%d TPC-H explanations accurate (KB built from the "
              "synthetic workload — TPC-H shapes retrieve well because the "
              "embedding captures plan structure, not query text).\n",
              counts.accurate, counts.total());

  // One full explanation, for the record.
  auto q5 = fixture->explainer->Explain(AdaptedTpchQueries()[3].sql);  // Q5
  if (!q5.ok()) return 1;
  std::printf("\n--- Q5 (local supplier volume, 6-table join) ---\n%s\n",
              q5->generation.text.c_str());
  return 0;
}
