// Service-layer benchmark: concurrent explanation throughput and the
// embedding-keyed result cache.
//
// BM_ServiceThroughput/<workers> drives a repeated-query workload (64
// distinct queries, replayed round after round) through ExplainService and
// reports wall-clock queries/sec plus the cache hit rate. The acceptance
// bar for the service layer is >= 2x throughput at 4 workers vs. 1.
//
// Cache misses incur 1/1000 of the simulated hosted-LLM time as real wall
// time (llm_wall_scale = 0.001, i.e. an LLM at 1000x speed): the paper's
// serving bottleneck is the LLM round trip, and overlapping that wait is
// precisely what the worker pool is for. Without it the workload is pure
// CPU and no pool can beat 1 worker on a single-core machine.
//
// BM_CacheHitVsMiss reports the *simulated* end-to-end latency (encode +
// cache probe + search + LLM thinking/generation) for a cache miss vs. a
// hit — the honest-accounting numbers end_to_end_ms() now produces.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/sim_clock.h"
#include "obs/metrics.h"
#include "service/explain_service.h"

namespace {

using namespace htapex;
using namespace htapex::bench;

std::unique_ptr<Fixture>& SharedFixture() {
  static std::unique_ptr<Fixture> fixture = Fixture::Make();
  return fixture;
}

std::vector<std::string> Workload(const HtapSystem& system, int distinct) {
  std::vector<std::string> sqls;
  for (const GeneratedQuery& q : TestWorkload(system, distinct, 0xbe7c)) {
    sqls.push_back(q.sql);
  }
  return sqls;
}

void BM_ServiceThroughput(benchmark::State& state) {
  Fixture* f = SharedFixture().get();
  if (f == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  const std::vector<std::string> sqls = Workload(*f->system, 64);

  ServiceConfig config;
  config.num_workers = static_cast<int>(state.range(0));
  config.llm_wall_scale = 0.001;
  ExplainService service(f->explainer.get(), config);

  int64_t processed = 0;
  for (auto _ : state) {
    auto futures = service.SubmitBatch(sqls);
    for (auto& fut : futures) {
      auto r = fut.get();
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    }
    processed += static_cast<int64_t>(sqls.size());
  }
  state.SetItemsProcessed(processed);
  ServiceStats stats = service.Stats();
  state.counters["hit_rate_pct"] = 100.0 * stats.cache_hit_rate();
  state.counters["p50_e2e_ms"] = stats.end_to_end.p50_ms;
}
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_CacheHitVsMiss(benchmark::State& state) {
  Fixture* f = SharedFixture().get();
  if (f == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  const std::vector<std::string> sqls = Workload(*f->system, 32);
  for (auto _ : state) {
    ExplainService service(f->explainer.get(), ServiceConfig{});
    double miss_e2e = 0.0, hit_e2e = 0.0;
    for (const std::string& sql : sqls) {  // first pass: all misses
      auto r = service.ExplainSync(sql);
      if (r.ok()) miss_e2e += r->end_to_end_ms();
    }
    for (const std::string& sql : sqls) {  // second pass: cache hits
      auto r = service.ExplainSync(sql);
      if (r.ok()) hit_e2e += r->end_to_end_ms();
    }
    state.counters["miss_e2e_ms"] = miss_e2e / sqls.size();
    state.counters["hit_e2e_ms"] = hit_e2e / sqls.size();
    state.counters["hit_rate_pct"] =
        100.0 * service.Stats().cache_hit_rate();
  }
}
BENCHMARK(BM_CacheHitVsMiss)->Unit(benchmark::kMillisecond)->Iterations(1);

/// Wall time to drive `rounds` full passes of the workload through a
/// service with `workers` workers; returns queries/sec and fills stats.
double MeasureThroughput(Fixture* f, const std::vector<std::string>& sqls,
                         int workers, int rounds, ServiceStats* stats) {
  ServiceConfig config;
  config.num_workers = workers;
  config.llm_wall_scale = 0.001;
  ExplainService service(f->explainer.get(), config);
  WallTimer timer;
  for (int round = 0; round < rounds; ++round) {
    auto futures = service.SubmitBatch(sqls);
    for (auto& fut : futures) fut.get().status();
  }
  double seconds = timer.ElapsedMillis() / 1000.0;
  *stats = service.Stats();
  return static_cast<double>(sqls.size()) * rounds / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  if (SharedFixture() == nullptr) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // The acceptance table: repeated-query throughput by worker count.
  Fixture* f = SharedFixture().get();
  const std::vector<std::string> sqls = Workload(*f->system, 64);
  constexpr int kRounds = 6;
  std::printf(
      "\n=== service throughput (64 distinct queries x %d rounds, "
      "LLM at 1000x speed on misses) ===\n",
      kRounds);
  std::printf("%-10s %-14s %-10s %s\n", "workers", "queries/sec", "speedup",
              "cache hit rate");
  double base_qps = 0.0;
  ServiceStats last_stats;
  for (int workers : {1, 2, 4, 8}) {
    ServiceStats stats;
    double qps = MeasureThroughput(f, sqls, workers, kRounds, &stats);
    if (workers == 1) base_qps = qps;
    std::printf("%-10d %-14.0f %-10.2f %.1f%%\n", workers, qps,
                base_qps > 0 ? qps / base_qps : 0.0,
                100.0 * stats.cache_hit_rate());
    last_stats = stats;
  }
  std::printf("\n=== service stats (8-worker run) ===\n%s\n",
              last_stats.ToString().c_str());
  return 0;
}
