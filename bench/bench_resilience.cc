// Resilience benchmark: goodput and degradation mix under injected faults.
//
// Sweeps a combined fault level f over {0, 0.05, 0.1, 0.2, 0.3, 0.5} where
// each level activates the fault points at scaled probabilities
//   llm.transient_error p=f      llm.timeout p=f/2
//   llm.garbled_output  p=f/4    kb.hnsw_search p=f    kb.insert p=f/2
// (so f=0.2 is exactly the acceptance scenario: 20% transient + 10%
// timeouts). For each level the paper's 200-query test set runs through
// ExplainService and the bench reports the degradation mix — how many
// queries were answered by the full RAG pipeline, the DBG-PT baseline
// fallback, the local plan-diff report, or failed outright — plus goodput
// (full + baseline, i.e. answers a user would accept) and the resilience
// counters (retries, timeouts, breaker transitions, fallbacks).
//
// Determinism: every fault and backoff draw is keyed by (seed, point,
// request, attempt), so with one worker and the cache disabled (submit
// order == processing order, which pins the breaker evolution) the same
// seed must reproduce the identical mix. Each level therefore runs twice
// and the bench verifies the two runs match byte-for-byte.
//
// Acceptance (self-checked, non-zero exit on violation): at f <= 0.2 there
// are zero hard failures — every query is answered at kFull or
// kBaselineFallback.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "service/explain_service.h"

namespace {

using namespace htapex;
using namespace htapex::bench;

constexpr uint64_t kFaultSeed = 1337;

struct Mix {
  int full = 0;
  int baseline = 0;
  int plan_diff = 0;
  int failed = 0;
  ResilienceStats resilience;

  bool operator==(const Mix& o) const {
    return full == o.full && baseline == o.baseline &&
           plan_diff == o.plan_diff && failed == o.failed &&
           resilience.llm_retries == o.resilience.llm_retries &&
           resilience.llm_timeouts == o.resilience.llm_timeouts &&
           resilience.breaker_opens == o.resilience.breaker_opens &&
           resilience.fallbacks_baseline == o.resilience.fallbacks_baseline;
  }
};

std::string SpecForLevel(double f) {
  if (f <= 0.0) return "off";
  return StrFormat(
      "llm.transient_error:p=%.4f;llm.timeout:p=%.4f;"
      "llm.garbled_output:p=%.4f;kb.hnsw_search:p=%.4f;kb.insert:p=%.4f",
      f, f / 2.0, f / 4.0, f, f / 2.0);
}

Mix RunOnce(Fixture* fixture, const std::vector<std::string>& sqls,
            double level) {
  // ConfigureFaults rebuilds the resilient wrappers (fresh breakers, zeroed
  // counters); it must run while no service is alive.
  Status st =
      fixture->explainer->ConfigureFaults(SpecForLevel(level), kFaultSeed);
  if (!st.ok()) {
    std::fprintf(stderr, "ConfigureFaults failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  ServiceConfig config;
  config.num_workers = 1;       // submit order == processing order
  config.cache_enabled = false; // every query exercises the full ladder
  ExplainService service(fixture->explainer.get(), config);

  Mix mix;
  auto futures = service.SubmitBatch(sqls);
  for (auto& fut : futures) {
    Result<ExplainResult> r = fut.get();
    if (!r.ok()) {
      ++mix.failed;
      continue;
    }
    switch (r->degradation) {
      case DegradationLevel::kFull:
        ++mix.full;
        break;
      case DegradationLevel::kBaselineFallback:
        ++mix.baseline;
        break;
      case DegradationLevel::kPlanDiffOnly:
        ++mix.plan_diff;
        break;
      case DegradationLevel::kFailed:
        ++mix.failed;
        break;
    }
  }
  mix.resilience = fixture->explainer->ResilienceSnapshot();
  return mix;
}

}  // namespace

int main() {
  ExplainerConfig config;
  config.faults = "off";  // levels are configured per run, ignore the env
  std::unique_ptr<Fixture> fixture = Fixture::Make(std::move(config));
  if (fixture == nullptr) return 1;

  std::vector<std::string> sqls;
  for (const GeneratedQuery& q : TestWorkload(*fixture->system)) {
    sqls.push_back(q.sql);
  }

  std::printf("--- resilience sweep: %zu queries/level, fault seed %llu ---\n",
              sqls.size(), static_cast<unsigned long long>(kFaultSeed));
  std::printf("%-6s %6s %9s %10s %7s %8s %8s %9s %8s %6s\n", "fault", "full",
              "baseline", "plan_diff", "failed", "goodput", "retries",
              "timeouts", "br.open", "same?");

  bool ok = true;
  for (double level : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    Mix a = RunOnce(fixture.get(), sqls, level);
    Mix b = RunOnce(fixture.get(), sqls, level);
    bool same = a == b;
    double goodput =
        sqls.empty() ? 0.0
                     : 100.0 * (a.full + a.baseline) /
                           static_cast<double>(sqls.size());
    std::printf("%-6.2f %6d %9d %10d %7d %7.1f%% %8llu %9llu %8llu %6s\n",
                level, a.full, a.baseline, a.plan_diff, a.failed, goodput,
                static_cast<unsigned long long>(a.resilience.llm_retries),
                static_cast<unsigned long long>(a.resilience.llm_timeouts),
                static_cast<unsigned long long>(a.resilience.breaker_opens),
                same ? "yes" : "NO");
    if (!same) {
      std::fprintf(stderr,
                   "FAIL: level %.2f not deterministic across two runs\n",
                   level);
      ok = false;
    }
    if (level <= 0.2 && (a.plan_diff > 0 || a.failed > 0)) {
      std::fprintf(stderr,
                   "FAIL: hard failures at fault level %.2f "
                   "(plan_diff=%d failed=%d)\n",
                   level, a.plan_diff, a.failed);
      ok = false;
    }
  }
  if (ok) {
    std::printf("acceptance: zero hard failures at f<=0.2, deterministic "
                "across reruns — PASS\n");
  }
  return ok ? 0 : 1;
}
