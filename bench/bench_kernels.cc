// SIMD kernel-library benchmark + self-checks (src/common/kernels.h and
// the float32 serving paths built on it: FrozenTreeCnn, the vector-store
// slab scan, HNSW search).
//
// The acceptance bar this file enforces (exit code != 0 on violation):
//   1. Parity: over the full 200-query evaluation workload, the frozen
//      float32 router and the double-precision master produce identical
//      routing verdicts, identical knowledge-base top-K retrievals, and
//      embeddings within 1e-4 max-abs-diff.
//   2. Speedup (skipped when the active backend is scalar, e.g. under
//      HTAPEX_KERNELS=scalar): the SIMD float32 squared-L2 kernel and the
//      batched frozen forward pass each run >= 3x faster than the
//      double-precision scalar baselines they replaced.
//   3. Zero steady-state allocations: once warm, repeated batched forward
//      passes never grow the thread arena — the `grows` counter freezes.
//
// `--self-check` runs reduced-rep versions of the same checks (the CI
// kernels job's fast path); without it the full benchmark table prints too.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "nn/frozen_tree_cnn.h"
#include "router/smart_router.h"
#include "vectordb/knowledge_base.h"
#include "vectordb/vector_store.h"

namespace {

using namespace htapex;
using namespace htapex::bench;

std::unique_ptr<Fixture>& SharedFixture() {
  static std::unique_ptr<Fixture> fixture = Fixture::Make();
  return fixture;
}

/// The evaluation workload as planned pairs (bind + both optimizers).
std::vector<PlanPair> WorkloadPairs(const HtapSystem& system, int n) {
  std::vector<PlanPair> pairs;
  for (const GeneratedQuery& q : TestWorkload(system, n)) {
    auto bound = system.Bind(q.sql);
    if (!bound.ok()) continue;
    auto plans = system.PlanBoth(*bound);
    if (!plans.ok()) continue;
    pairs.push_back(std::move(*plans));
  }
  return pairs;
}

/// Check 1: float32 inference is an implementation detail, not a behaviour
/// change — verdicts and retrievals must match the double master exactly.
bool CheckParity(Fixture* f, const std::vector<PlanPair>& pairs) {
  const SmartRouter& router = f->explainer->router();
  const KnowledgeBase& kb = f->explainer->knowledge_base();
  const int k = f->explainer->config().retrieval_k;

  std::vector<const PlanPair*> ptrs;
  for (const PlanPair& p : pairs) ptrs.push_back(&p);
  std::vector<RoutedPair> routed = router.RouteBatch(ptrs);

  double max_abs_diff = 0.0;
  size_t verdict_mismatches = 0, retrieval_mismatches = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    double p_master = router.ApProbabilityMaster(pairs[i]);
    bool verdict_master = p_master >= 0.5;
    bool verdict_frozen = routed[i].route == EngineKind::kAp;
    if (verdict_master != verdict_frozen) ++verdict_mismatches;

    std::vector<double> emb_master = router.EmbedMaster(pairs[i]);
    for (size_t j = 0; j < emb_master.size(); ++j) {
      max_abs_diff = std::max(
          max_abs_diff, std::fabs(emb_master[j] - routed[i].embedding[j]));
    }

    auto hits_master = kb.Retrieve(emb_master, k);
    auto hits_frozen = kb.Retrieve(routed[i].embedding, k);
    bool same = hits_master.size() == hits_frozen.size();
    for (size_t j = 0; same && j < hits_master.size(); ++j) {
      same = hits_master[j]->id == hits_frozen[j]->id;
    }
    if (!same) ++retrieval_mismatches;
  }
  std::printf(
      "parity: %zu pairs, %zu verdict mismatches, %zu retrieval mismatches, "
      "embedding max-abs-diff %.2e (bars: 0, 0, < 1e-4)\n",
      pairs.size(), verdict_mismatches, retrieval_mismatches, max_abs_diff);
  if (verdict_mismatches != 0 || retrieval_mismatches != 0 ||
      max_abs_diff >= 1e-4) {
    std::fprintf(stderr, "FAIL: float32 parity violated\n");
    return false;
  }
  return true;
}

/// A/B-alternated best-of-reps: each side's estimate is its fastest rep.
/// External load (CI neighbours, this VM's other tenants) only ever slows
/// a rep down, so min-of-reps converges on the undisturbed cost, and
/// alternating the sides exposes both to the same interference.
template <typename FnA, typename FnB>
void BestMillisAb(int reps, FnA&& a, FnB&& b, double* best_a,
                  double* best_b) {
  *best_a = 1e300;
  *best_b = 1e300;
  a();  // warmup (first-touch, branch predictors)
  b();
  for (int rep = 0; rep < reps; ++rep) {
    {
      WallTimer timer;
      a();
      *best_a = std::min(*best_a, timer.ElapsedMillis());
    }
    {
      WallTimer timer;
      b();
      *best_b = std::min(*best_b, timer.ElapsedMillis());
    }
  }
}

/// Check 2a: SIMD float32 squared-L2 vs the double-precision scalar
/// reference (vector_store.h's exported SquaredL2) on embedding-sized and
/// larger vectors.
bool CheckSquaredL2Speedup(int reps) {
  Rng rng(0x51bd);
  const int dim = 256, count = 512;
  std::vector<std::vector<double>> vecs_d(count);
  std::vector<float> slab(static_cast<size_t>(count) * dim);
  std::vector<double> query_d(dim);
  std::vector<float> query_f(dim);
  for (int i = 0; i < count; ++i) {
    vecs_d[static_cast<size_t>(i)].resize(dim);
    for (int j = 0; j < dim; ++j) {
      double v = rng.UniformReal(-1, 1);
      vecs_d[static_cast<size_t>(i)][static_cast<size_t>(j)] = v;
      slab[static_cast<size_t>(i) * dim + j] = static_cast<float>(v);
    }
  }
  for (int j = 0; j < dim; ++j) {
    query_d[static_cast<size_t>(j)] = rng.UniformReal(-1, 1);
    query_f[static_cast<size_t>(j)] = static_cast<float>(query_d[static_cast<size_t>(j)]);
  }

  double sink = 0.0;
  double ms_double = 0.0, ms_simd = 0.0;
  BestMillisAb(
      reps,
      [&] {
        for (int pass = 0; pass < 20; ++pass) {
          for (int i = 0; i < count; ++i) {
            sink += SquaredL2(query_d, vecs_d[static_cast<size_t>(i)]);
          }
        }
      },
      [&] {
        for (int pass = 0; pass < 20; ++pass) {
          for (int i = 0; i < count; ++i) {
            sink += kernels::SquaredL2(
                query_f.data(), slab.data() + static_cast<size_t>(i) * dim,
                dim);
          }
        }
      },
      &ms_double, &ms_simd);
  benchmark::DoNotOptimize(sink);
  double speedup = ms_double / ms_simd;
  std::printf(
      "squared-L2 (%s, dim %d): scalar double %.3f ms, float32 kernel "
      "%.3f ms -> %.1fx (bar: >= 3x)\n",
      kernels::BackendName(kernels::ActiveBackend()), dim, ms_double, ms_simd,
      speedup);
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: squared-L2 speedup %.2fx < 3x\n", speedup);
    return false;
  }
  return true;
}

/// Check 2b: the batched float32 forward pass (blocked conv GEMMs) vs the
/// per-pair double-precision master, both over pre-featurized trees so the
/// comparison isolates the inference kernels (featurization is identical
/// on both sides and excluded; both sides extract embeddings too, matching
/// what the serving path consumes).
bool CheckForwardSpeedup(const std::vector<PlanPair>& pairs, int reps) {
  std::vector<PlanTreeFeatures> features(2 * pairs.size());
  std::vector<const PlanTreeFeatures*> tps(pairs.size());
  std::vector<const PlanTreeFeatures*> aps(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    features[2 * i] = FeaturizePlan(pairs[i].tp);
    features[2 * i + 1] = FeaturizePlan(pairs[i].ap);
    tps[i] = &features[2 * i];
    aps[i] = &features[2 * i + 1];
  }
  // Compute cost is weight-independent; a fresh model times the same as a
  // trained one.
  TreeCnn::Config config;
  config.feature_dim = kPlanFeatureDim;
  TreeCnn master(config);
  FrozenTreeCnn frozen(master);

  double sink = 0.0;
  double ms_master = 0.0, ms_frozen = 0.0;
  BestMillisAb(
      reps,
      [&] {
        std::vector<double> z;
        for (size_t i = 0; i < pairs.size(); ++i) {
          sink += master.PredictApFaster(*tps[i], *aps[i], &z);
        }
      },
      [&] {
        std::vector<double> p;
        std::vector<std::vector<double>> z;
        frozen.PredictBatch(tps, aps, &p, &z);
        sink += p.empty() ? 0.0 : p[0];
      },
      &ms_master, &ms_frozen);
  benchmark::DoNotOptimize(sink);
  double speedup = ms_master / ms_frozen;
  std::printf(
      "router forward (%s, %zu pairs): double master %.2f ms, frozen "
      "batched %.2f ms -> %.1fx (bar: >= 3x)\n",
      kernels::BackendName(kernels::ActiveBackend()), pairs.size(), ms_master,
      ms_frozen, speedup);
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: forward-pass speedup %.2fx < 3x\n", speedup);
    return false;
  }
  return true;
}

/// Check 3: once warm, the batched forward path carves everything out of
/// the (coalesced) thread arena — no further heap growth, ever.
bool CheckZeroSteadyStateAllocs(Fixture* f,
                                const std::vector<PlanPair>& pairs) {
  const SmartRouter& router = f->explainer->router();
  std::vector<const PlanPair*> ptrs;
  for (const PlanPair& p : pairs) ptrs.push_back(&p);
  for (int warm = 0; warm < 3; ++warm) (void)router.RouteBatch(ptrs);
  const uint64_t grows_warm = kernels::ThreadArena().stats().grows;
  const int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) (void)router.RouteBatch(ptrs);
  const uint64_t grows_after = kernels::ThreadArena().stats().grows;
  std::printf(
      "arena steady state: %llu grows after warmup, %llu after %d more "
      "batched passes (bar: equal)\n",
      static_cast<unsigned long long>(grows_warm),
      static_cast<unsigned long long>(grows_after), kRounds);
  if (grows_after != grows_warm) {
    std::fprintf(stderr,
                 "FAIL: steady-state forward passes grew the arena "
                 "(%llu -> %llu)\n",
                 static_cast<unsigned long long>(grows_warm),
                 static_cast<unsigned long long>(grows_after));
    return false;
  }
  return true;
}

void BM_SquaredL2(benchmark::State& state) {
  const auto backend = static_cast<kernels::Backend>(state.range(0));
  if (!kernels::ForceBackendForTest(backend)) {
    state.SkipWithError("backend unsupported on this CPU");
    return;
  }
  const int dim = static_cast<int>(state.range(1));
  Rng rng(0xd1f);
  std::vector<float> a(static_cast<size_t>(dim)), b(static_cast<size_t>(dim));
  for (int i = 0; i < dim; ++i) {
    a[static_cast<size_t>(i)] = static_cast<float>(rng.UniformReal(-1, 1));
    b[static_cast<size_t>(i)] = static_cast<float>(rng.UniformReal(-1, 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::SquaredL2(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kernels::BackendName(backend));
}
BENCHMARK(BM_SquaredL2)
    ->ArgsProduct({{0 /*scalar*/, 1 /*avx2*/}, {16, 256}})
    ->Unit(benchmark::kNanosecond);

void BM_FrozenRouteBatch(benchmark::State& state) {
  Fixture* f = SharedFixture().get();
  if (f == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  const auto backend = static_cast<kernels::Backend>(state.range(0));
  if (!kernels::ForceBackendForTest(backend)) {
    state.SkipWithError("backend unsupported on this CPU");
    return;
  }
  static std::vector<PlanPair> pairs = WorkloadPairs(*f->system, 64);
  std::vector<const PlanPair*> ptrs;
  for (const PlanPair& p : pairs) ptrs.push_back(&p);
  const SmartRouter& router = f->explainer->router();
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.RouteBatch(ptrs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.size()));
  state.SetLabel(kernels::BackendName(backend));
}
BENCHMARK(BM_FrozenRouteBatch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_MasterPredict(benchmark::State& state) {
  Fixture* f = SharedFixture().get();
  if (f == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  static std::vector<PlanPair> pairs = WorkloadPairs(*f->system, 64);
  const SmartRouter& router = f->explainer->router();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        router.ApProbabilityMaster(pairs[i++ % pairs.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("double master");
}
BENCHMARK(BM_MasterPredict)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bool self_check = false;
  // Strip --self-check before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) {
      self_check = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (SharedFixture() == nullptr) return 1;
  Fixture* f = SharedFixture().get();
  const std::vector<PlanPair> pairs = WorkloadPairs(*f->system, 200);
  if (pairs.empty()) {
    std::fprintf(stderr, "FAIL: workload produced no plan pairs\n");
    return 1;
  }

  const kernels::Backend startup = kernels::ActiveBackend();
  if (!self_check) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    // The benchmarks force backends; restore the startup choice for the
    // self-checks below.
    kernels::ForceBackendForTest(startup);
  }

  const int reps = self_check ? 12 : 25;
  std::printf("\n=== kernel self-checks%s (backend: %s) ===\n",
              self_check ? " (quick)" : "",
              kernels::BackendName(kernels::ActiveBackend()));
  bool ok = true;
  ok = CheckParity(f, pairs) && ok;
  if (kernels::ActiveBackend() != kernels::Backend::kScalar) {
    ok = CheckSquaredL2Speedup(reps) && ok;
    ok = CheckForwardSpeedup(pairs, reps) && ok;
  } else {
    std::printf(
        "speedup gates skipped: scalar backend active (forced or no SIMD "
        "support)\n");
  }
  ok = CheckZeroSteadyStateAllocs(f, pairs) && ok;
  std::printf("%s\n", ok ? "ALL CHECKS PASSED" : "CHECKS FAILED");
  return ok ? 0 : 1;
}
