// Extension experiment M1 (the paper's Section VII future work, implemented):
// knowledge-base maintenance strategies.
//
//  (a) Representative-query selection: given a 100-query candidate pool and
//      an expert-annotation budget of 20, compare the curated
//      pattern-coverage selection, k-medoids over plan-pair embeddings, and
//      a random pick.
//  (b) Stale-entry expiry: let the KB grow through feedback corrections,
//      then shrink it back with the least-used/oldest-first policy and show
//      accuracy is retained.
#include <cstdio>

#include "bench/bench_common.h"
#include "rag/kb_manager.h"

namespace {

using namespace htapex;
using namespace htapex::bench;

GradeCounts RunWorkload(HtapExplainer* explainer,
                        const std::vector<GeneratedQuery>& workload) {
  GradeCounts counts;
  for (const GeneratedQuery& gq : workload) {
    auto result = explainer->Explain(gq.sql);
    if (result.ok()) counts.Add(result->grade.grade);
  }
  return counts;
}

}  // namespace

int main() {
  // Base fixture (trains the router once; we reuse its system for all
  // selection strategies so embeddings are comparable).
  auto fixture = Fixture::Make(ExplainerConfig{}, /*build_kb=*/false);
  if (fixture == nullptr) return 1;
  HtapSystem* system = fixture->system.get();
  auto workload = TestWorkload(*system);

  // Candidate pool: 100 un-annotated queries with embeddings.
  QueryGenerator pool_gen(system->config().stats_scale_factor, 0xca1d);
  std::vector<KbCandidate> candidates;
  for (const GeneratedQuery& gq : pool_gen.GenerateMix(100)) {
    auto bound = system->Bind(gq.sql);
    if (!bound.ok()) continue;
    auto plans = system->PlanBoth(*bound);
    if (!plans.ok()) continue;
    KbCandidate c;
    c.sql = gq.sql;
    c.embedding = fixture->explainer->router().Embed(*plans);
    candidates.push_back(std::move(c));
  }

  std::printf("=== M1a: 20-entry selection strategies (100 candidates, "
              "%zu test queries) ===\n", workload.size());

  // (1) Curated pattern coverage (the default KB).
  {
    auto f = Fixture::Make();
    if (f == nullptr) return 1;
    GradeCounts c = RunWorkload(f->explainer.get(), workload);
    std::printf("%-26s accurate=%5.1f%%  none=%4.1f%%\n",
                "curated (pattern cover)", c.accuracy(), c.none_rate());
  }
  // (2) k-medoids over embeddings.
  {
    auto f = Fixture::Make(ExplainerConfig{}, /*build_kb=*/false);
    if (f == nullptr) return 1;
    std::vector<int> picks = KbManager::SelectRepresentatives(candidates, 20);
    std::vector<std::string> sqls;
    for (int i : picks) sqls.push_back(candidates[static_cast<size_t>(i)].sql);
    if (!f->explainer->AddToKnowledgeBase(sqls).ok()) return 1;
    GradeCounts c = RunWorkload(f->explainer.get(), workload);
    std::printf("%-26s accurate=%5.1f%%  none=%4.1f%%\n",
                "k-medoids (embeddings)", c.accuracy(), c.none_rate());
  }
  // (3) Random selection.
  {
    auto f = Fixture::Make(ExplainerConfig{}, /*build_kb=*/false);
    if (f == nullptr) return 1;
    Rng rng(99);
    std::vector<std::string> sqls;
    std::vector<int> order(candidates.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    rng.Shuffle(&order);
    for (int i = 0; i < 20; ++i) {
      sqls.push_back(candidates[static_cast<size_t>(order[static_cast<size_t>(i)])].sql);
    }
    if (!f->explainer->AddToKnowledgeBase(sqls).ok()) return 1;
    GradeCounts c = RunWorkload(f->explainer.get(), workload);
    std::printf("%-26s accurate=%5.1f%%  none=%4.1f%%\n", "random pick",
                c.accuracy(), c.none_rate());
  }

  // (b) Expiry policy.
  std::printf("\n=== M1b: stale-entry expiry ===\n");
  auto f = Fixture::Make();
  if (f == nullptr) return 1;
  GradeCounts before = RunWorkload(f->explainer.get(), workload);
  // Grow the KB through the feedback loop over a broader stream of queries
  // (heavy on the rare combinations that actually fail).
  QueryGenerator stream_gen(system->config().stats_scale_factor, 0x57a1e);
  for (int i = 0; i < 60; ++i) {
    GeneratedQuery gq = stream_gen.Generate(
        i % 2 == 0 ? QueryPattern::kExotic
                   : AllQueryPatterns()[static_cast<size_t>(i) %
                                        AllQueryPatterns().size()]);
    auto result = f->explainer->Explain(gq.sql);
    if (result.ok() && result->grade.grade != ExplanationGrade::kAccurate) {
      f->explainer->IncorporateCorrection(*result).ToString();
    }
  }
  size_t grown = f->explainer->knowledge_base().size();
  GradeCounts grown_counts = RunWorkload(f->explainer.get(), workload);
  auto removed =
      KbManager::ShrinkTo(&f->explainer->mutable_knowledge_base(), 16);
  if (!removed.ok()) return 1;
  GradeCounts after = RunWorkload(f->explainer.get(), workload);
  std::printf("KB 20 entries:             accurate=%5.1f%%\n",
              before.accuracy());
  std::printf("grown to %zu via feedback:  accurate=%5.1f%%\n", grown,
              grown_counts.accuracy());
  std::printf("expired %d (to 16 live):    accurate=%5.1f%%\n", *removed,
              after.accuracy());
  std::printf("policy: least-retrieved first, oldest first among ties — "
              "frequently-used precedents survive.\n");
  return 0;
}
