// Self-checks for the self-healing model lifecycle
// (src/lifecycle/model_lifecycle.h): drift detection, shadow-validated
// retraining, atomic hot-swap, regression rollback, and determinism.
//
// Methodology: the drift scenario from bench_drift — a router trained in
// the default environment keeps serving after the AP cluster shrinks to
// one slow-dispatch node, so its labels in the contested region flip —
// but here the recovery is AUTOMATED: execution feedback streams into a
// ModelLifecycleManager one sample at a time and the manager detects the
// drift, retrains a candidate, shadow-scores it, swaps it in, and watches
// the swap, all through its normal tick path.
//
// The acceptance bar this file enforces (exit code != 0 on violation):
//   A. Self-healing recovers accuracy: the lifecycle swaps exactly once
//      and the post-swap serving router scores within 2 points of a
//      router fresh-trained on drifted labels, on a held-out drifted set.
//   B. Hot-swap safety: reader threads hammering the frozen snapshot
//      through 200 concurrent republications only ever see probabilities
//      in [0,1] — no torn weights, no invalid output, no pause.
//   C. Regression rollback: a swap whose post-swap window tanks (label
//      noise) is rolled back automatically, and the restored snapshot is
//      bit-identical to the pre-swap weights (frozen CRC equality).
//   D. Determinism: two same-seed runs of the full scenario produce
//      identical lifecycle event logs.
//   E. Service integration: ExplainService with lifecycle enabled records
//      feedback for served queries and its Prometheus exposition (with the
//      lifecycle families) round-trips the strict parser.
//
// `--self-check` is accepted for CI symmetry with the other benches; the
// gates run (and gate the exit code) either way.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/htap_system.h"
#include "lifecycle/model_lifecycle.h"
#include "obs/exposition.h"
#include "router/smart_router.h"
#include "service/explain_service.h"
#include "workload/query_generator.h"

namespace {

using namespace htapex;
using namespace htapex::bench;

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "FAIL: %s\n", what);
  ++g_failures;
}

std::vector<PairExample> Label(const HtapSystem& system,
                               const SmartRouter& router,
                               const std::vector<GeneratedQuery>& queries) {
  std::vector<PairExample> out;
  for (const GeneratedQuery& gq : queries) {
    auto bound = system.Bind(gq.sql);
    if (!bound.ok()) continue;
    auto plans = system.PlanBoth(*bound);
    if (!plans.ok()) continue;
    EngineKind faster =
        system.LatencyMs(plans->tp) <= system.LatencyMs(plans->ap)
            ? EngineKind::kTp
            : EngineKind::kAp;
    out.push_back(router.MakeExample(*plans, faster));
  }
  return out;
}

/// The contested patterns whose winner flips when the AP cluster shrinks —
/// the same drifted mix bench_drift uses.
std::vector<GeneratedQuery> DriftedWorkload(double sf, uint64_t seed, int n) {
  QueryGenerator gen(sf, seed);
  std::vector<GeneratedQuery> out;
  const QueryPattern contested[] = {
      QueryPattern::kJoinSmall, QueryPattern::kSelectiveRange,
      QueryPattern::kTopNIndexed, QueryPattern::kTopNLargeOffset};
  for (int i = 0; i < n; ++i) {
    out.push_back(gen.Generate(contested[i % 4]));
  }
  return out;
}

LifecycleOptions ScenarioOptions() {
  LifecycleOptions opts;
  opts.enabled = true;  // memory-only feedback buffer (no data_dir)
  opts.min_samples = 48;
  opts.eval_every = 16;
  opts.drift_window = 64;
  opts.drift_threshold = 0.15;
  // Mostly-drifted training window by detection time, and the same epoch
  // budget the fresh-trained reference gets.
  opts.retrain_window = 128;
  opts.retrain_epochs = 60;
  opts.shadow_window = 64;
  opts.shadow_beats = 2;
  opts.watch_window = 48;
  opts.regression_threshold = 0.10;
  opts.tick_every_samples = 8;
  opts.seed = 7;
  return opts;
}

struct ScenarioResult {
  bool init_ok = false;
  LifecycleStats stats;
  std::vector<std::string> events;
  double lifecycle_accuracy = 0.0;  // post-swap serving, held-out drifted set
  double fresh_accuracy = 0.0;      // fresh-trained reference, same set
  uint32_t pre_swap_crc = 0;
  uint32_t final_crc = 0;
};

/// One full drift-and-self-heal run, deterministic for the fixed seeds.
/// With `force_regression`, label-flipped feedback is injected after the
/// swap so the watch window regresses and the manager must roll back.
ScenarioResult RunScenario(bool force_regression) {
  ScenarioResult out;

  HtapSystem original;
  HtapConfig config;
  config.data_scale_factor = 0.0;
  if (!original.Init(config).ok()) return out;

  HtapSystem shrunk;
  HtapConfig shrunk_config = config;
  shrunk_config.latency.ap_parallelism = 1.0;
  shrunk_config.latency.ap_startup_ms = 250.0;
  if (!shrunk.Init(shrunk_config).ok()) return out;

  SmartRouter router(7);
  QueryGenerator train_gen(config.stats_scale_factor, 555);
  router.Train(Label(original, router, train_gen.GenerateMix(320)), 60);

  ModelLifecycleManager lifecycle(&router, ScenarioOptions());
  if (!lifecycle.Open().ok()) return out;

  // Healthy traffic first: the drift detector needs a high-water baseline.
  QueryGenerator live_gen(config.stats_scale_factor, 556);
  for (PairExample& ex : Label(original, router, live_gen.GenerateMix(64))) {
    lifecycle.RecordExample(std::move(ex));
  }
  out.pre_swap_crc = router.frozen_crc();

  // The environment shrinks; feedback now carries drifted labels. The
  // manager's auto-ticks detect the drop, retrain, shadow, and swap.
  auto drifted =
      Label(shrunk, router, DriftedWorkload(config.stats_scale_factor, 777, 320));
  size_t fed = 0;
  for (PairExample& ex : drifted) {
    if (lifecycle.Stats().swaps > 0) break;  // swap landed; rest is post-swap
    lifecycle.RecordExample(std::move(ex));
    ++fed;
  }

  if (force_regression) {
    // Poison the post-swap window: flipped labels make every verdict look
    // wrong, so watch must see a regression and restore the old weights.
    for (size_t i = fed; i < drifted.size(); ++i) {
      PairExample ex = drifted[i];
      ex.label = 1 - ex.label;
      lifecycle.RecordExample(std::move(ex));
      if (lifecycle.Stats().rollbacks > 0) break;
    }
  } else {
    // Keep the drifted traffic flowing so the watch window can conclude.
    for (size_t i = fed; i < drifted.size(); ++i) {
      lifecycle.RecordExample(std::move(drifted[i]));
    }
  }

  // Held-out drifted evaluation set, and the manual-retrain reference the
  // lifecycle is graded against (bench_drift's recovery recipe).
  auto held_out =
      Label(shrunk, router, DriftedWorkload(config.stats_scale_factor, 999, 160));
  SmartRouter fresh(7);
  fresh.Train(
      Label(shrunk, fresh, DriftedWorkload(config.stats_scale_factor, 888, 120)),
      60);
  out.lifecycle_accuracy = router.EvaluateAccuracy(held_out);
  out.fresh_accuracy = fresh.EvaluateAccuracy(held_out);
  out.stats = lifecycle.Stats();
  out.events = lifecycle.EventLog();
  out.final_crc = router.frozen_crc();
  out.init_ok = true;
  return out;
}

/// Gate B: concurrent readers vs. 200 republications. Readers must never
/// see a torn snapshot — every probability stays a valid [0,1] value.
void HammerHotSwap() {
  HtapSystem system;
  HtapConfig config;
  config.data_scale_factor = 0.0;
  if (!system.Init(config).ok()) {
    Check(false, "hammer: system init failed");
    return;
  }
  SmartRouter serving(7);
  QueryGenerator gen(config.stats_scale_factor, 555);
  auto examples = Label(system, serving, gen.GenerateMix(64));
  serving.Train(examples, 40);
  SmartRouter other(11);
  other.Train(Label(system, other, DriftedWorkload(
                                       config.stats_scale_factor, 777, 64)),
              40);
  std::unique_ptr<TreeCnn> retained = serving.CloneMaster();
  uint64_t version_before = serving.frozen_version();
  uint32_t crc_before = serving.frozen_crc();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> invalid{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto frozen = serving.frozen_snapshot();
        for (const PairExample& ex : examples) {
          double p = frozen->PredictApFaster(ex.tp, ex.ap);
          if (!(p >= 0.0 && p <= 1.0)) {
            invalid.fetch_add(1, std::memory_order_relaxed);
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Alternate the two publication paths the lifecycle uses: hot-swap
  // (CloneWeightsFrom) and rollback (AdoptMaster).
  constexpr int kSwaps = 200;
  for (int i = 0; i < kSwaps; ++i) {
    if (i % 2 == 0) {
      serving.CloneWeightsFrom(other);
    } else {
      Check(serving.AdoptMaster(*retained).ok(), "hammer: AdoptMaster failed");
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  std::printf("B. hot-swap hammer: %llu reads across %d republications, "
              "%llu invalid\n",
              (unsigned long long)reads.load(), kSwaps,
              (unsigned long long)invalid.load());
  Check(invalid.load() == 0, "hammer: reader saw an out-of-range probability");
  Check(reads.load() > 0, "hammer: readers made no progress");
  Check(serving.frozen_version() == version_before + kSwaps,
        "hammer: republication count does not match frozen version");
  Check(serving.frozen_crc() == crc_before,
        "hammer: final snapshot is not the retained weights");
}

/// Gate E: the service-level wiring — feedback recorded for served
/// queries, lifecycle stats exposed, exposition round-trips the parser.
void ServiceIntegration() {
  std::unique_ptr<Fixture> fixture = Fixture::Make();
  if (fixture == nullptr) {
    Check(false, "service: fixture init failed");
    return;
  }
  ServiceConfig config;
  config.num_workers = 2;
  config.lifecycle.enabled = true;  // memory-only buffer
  ExplainService service(fixture->explainer.get(), config);
  Check(service.lifecycle() != nullptr, "service: lifecycle not armed");

  std::vector<std::string> sqls;
  for (const GeneratedQuery& q : TestWorkload(*fixture->system, 48)) {
    sqls.push_back(q.sql);
  }
  auto futures = service.SubmitBatch(sqls);
  size_t ok_count = 0;
  for (auto& fut : futures) {
    if (fut.get().ok()) ++ok_count;
  }
  Check(ok_count == sqls.size(), "service: not every query explained");

  ServiceStats stats = service.Stats();
  Check(stats.lifecycle_enabled, "service: stats missing lifecycle block");
  Check(stats.lifecycle.feedback_samples >= ok_count,
        "service: served queries not recorded as feedback");

  auto parsed = ParseExposition(service.ExpositionText());
  Check(parsed.ok(), "service: exposition does not round-trip the parser");
  bool saw_samples = false;
  bool saw_phase = false;
  if (parsed.ok()) {
    for (const ExpositionSample& s : *parsed) {
      if (s.name == "htapex_lifecycle_feedback_samples_total" && s.value > 0) {
        saw_samples = true;
      }
      if (s.name == "htapex_lifecycle_phase") saw_phase = true;
    }
  }
  Check(saw_samples, "service: lifecycle feedback counter not exposed");
  Check(saw_phase, "service: lifecycle phase gauge not exposed");
  std::printf("E. service integration: %zu queries served, %llu feedback "
              "samples, exposition round-trips\n",
              ok_count, (unsigned long long)stats.lifecycle.feedback_samples);
}

}  // namespace

int main(int argc, char** argv) {
  bool self_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
  }

  std::printf("=== self-healing model lifecycle ===\n");

  // A. drift -> detect -> retrain -> shadow -> swap -> accepted.
  ScenarioResult heal = RunScenario(/*force_regression=*/false);
  Check(heal.init_ok, "heal: scenario init failed");
  if (heal.init_ok) {
    std::printf("A. self-heal: drift=%llu retrains=%llu swaps=%llu "
                "rollbacks=%llu | lifecycle acc %.3f vs fresh %.3f\n",
                (unsigned long long)heal.stats.drift_detections,
                (unsigned long long)heal.stats.retrains,
                (unsigned long long)heal.stats.swaps,
                (unsigned long long)heal.stats.rollbacks,
                heal.lifecycle_accuracy, heal.fresh_accuracy);
    Check(heal.stats.drift_detections >= 1, "heal: drift never detected");
    Check(heal.stats.retrains >= 1, "heal: no retrain ran");
    Check(heal.stats.swaps == 1, "heal: expected exactly one hot-swap");
    Check(heal.stats.rollbacks == 0, "heal: unexpected rollback");
    Check(heal.final_crc != heal.pre_swap_crc,
          "heal: swap did not change the serving weights");
    Check(heal.lifecycle_accuracy >= heal.fresh_accuracy - 0.02,
          "heal: recovered accuracy more than 2 points below fresh-trained");
  }

  // B. hot-swap safety under concurrent load.
  HammerHotSwap();

  // C. forced post-swap regression -> automatic rollback, bit-identical.
  ScenarioResult regress = RunScenario(/*force_regression=*/true);
  Check(regress.init_ok, "rollback: scenario init failed");
  if (regress.init_ok) {
    std::printf("C. rollback: swaps=%llu rollbacks=%llu | pre-swap crc=%08x "
                "final crc=%08x\n",
                (unsigned long long)regress.stats.swaps,
                (unsigned long long)regress.stats.rollbacks,
                regress.pre_swap_crc, regress.final_crc);
    Check(regress.stats.swaps == 1, "rollback: expected exactly one swap");
    Check(regress.stats.rollbacks == 1,
          "rollback: regression did not trigger a rollback");
    Check(regress.final_crc == regress.pre_swap_crc,
          "rollback: restored weights are not bit-identical (CRC mismatch)");
  }

  // D. same-seed determinism of the full event log.
  ScenarioResult rerun = RunScenario(/*force_regression=*/false);
  bool logs_match =
      rerun.init_ok && heal.init_ok && rerun.events == heal.events;
  std::printf("D. determinism: %zu events, same-seed rerun %s\n",
              heal.events.size(), logs_match ? "identical" : "DIVERGED");
  Check(logs_match, "determinism: same-seed event logs differ");
  if (!logs_match && heal.init_ok && rerun.init_ok) {
    size_t n = std::max(heal.events.size(), rerun.events.size());
    for (size_t i = 0; i < n; ++i) {
      const char* a = i < heal.events.size() ? heal.events[i].c_str() : "-";
      const char* b = i < rerun.events.size() ? rerun.events[i].c_str() : "-";
      if (std::strcmp(a, b) != 0) {
        std::fprintf(stderr, "  event[%zu]: \"%s\" vs \"%s\"\n", i, a, b);
      }
    }
  }

  // E. service wiring + exposition.
  ServiceIntegration();

  if (!self_check && heal.init_ok) {
    std::printf("--- lifecycle event log (run A) ---\n");
    for (const std::string& e : heal.events) std::printf("  %s\n", e.c_str());
  }

  std::printf("self-check: %s\n", g_failures == 0 ? "PASS" : "FAIL");
  return g_failures == 0 ? 0 : 2;
}
