// Vectorized AP executor benchmark + self-checks (src/engine/vec_executor.h,
// morsel.h, vec_batch.h).
//
// The acceptance bar this file enforces (exit code != 0 on violation):
//   1. Parity: over a broad AP query set (hand-picked operator coverage
//      plus every generated workload pattern), the vectorized morsel-driven
//      executor and the row-at-a-time oracle produce byte-identical result
//      fingerprints and identical per-node ExecStats.
//   2. Single-thread speedup: on scan-dominated aggregation queries — the
//      tuple-at-a-time AP path the vectorized pipeline replaces — the
//      vectorized executor with ONE morsel worker is >= 3x faster
//      (geomean) than the row executor on the same AP plans.
//   3. Morsel scaling: 4 workers beat 1 worker by >= 1.5x on a
//      scan-aggregate query (auto-skipped on machines with < 2 cores,
//      where the extra workers just contend for one core).
//
// `--self-check` runs reduced-rep versions of the same checks (the CI
// engine job's fast path); without it the full benchmark table prints too.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/kernels.h"
#include "common/sim_clock.h"
#include "engine/htap_system.h"
#include "workload/query_generator.h"

namespace {

using namespace htapex;

/// Loaded-data fixture: statistics at the loaded scale so generated
/// queries hit real keys. SF 0.05 gives orders ~75k rows (~19 morsels).
std::unique_ptr<HtapSystem>& SharedSystem() {
  static std::unique_ptr<HtapSystem> system = [] {
    auto s = std::make_unique<HtapSystem>();
    HtapConfig config;
    config.stats_scale_factor = 0.05;
    config.data_scale_factor = 0.05;
    Status st = s->Init(config);
    if (!st.ok()) {
      std::fprintf(stderr, "system init failed: %s\n", st.ToString().c_str());
      s.reset();
    }
    return s;
  }();
  return system;
}

/// A bound + planned query, reused across reps so timing excludes the
/// front end.
struct PlannedQuery {
  std::string sql;
  BoundQuery query;
  PlanPair plans;
};

std::vector<PlannedQuery> PlanAll(const HtapSystem& system,
                                  const std::vector<std::string>& sqls) {
  std::vector<PlannedQuery> out;
  for (const std::string& sql : sqls) {
    auto bound = system.Bind(sql);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind failed (%s): %s\n", sql.c_str(),
                   bound.status().ToString().c_str());
      continue;
    }
    auto plans = system.PlanBoth(*bound);
    if (!plans.ok()) continue;
    out.push_back({sql, std::move(*bound), std::move(*plans)});
  }
  return out;
}

/// Operator-coverage parity set: every vectorized code path (typed-mask
/// scan, per-row fallback, typed and generic fused aggregation, join
/// pipelines, Top-N, sort, distinct) plus TP-favoured shapes for contrast.
std::vector<std::string> ParityQueries() {
  return {
      "SELECT COUNT(*), SUM(o_totalprice), MIN(o_totalprice), "
      "MAX(o_totalprice) FROM orders WHERE o_totalprice > 50000",
      "SELECT COUNT(*), SUM(o_custkey), AVG(o_custkey) FROM orders "
      "WHERE o_custkey BETWEEN 100 AND 2000",
      "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'",
      "SELECT COUNT(*) FROM customer WHERE c_name LIKE 'customer#0000001%'",
      "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer "
      "GROUP BY c_nationkey ORDER BY c_nationkey",
      "SELECT n_name, COUNT(*) FROM nation, customer "
      "WHERE n_nationkey = c_nationkey GROUP BY n_name",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_totalprice > 100000",
      "SELECT COUNT(*) FROM customer, nation, orders "
      "WHERE o_custkey = c_custkey AND n_nationkey = c_nationkey "
      "AND n_name = 'egypt'",
      "SELECT o_orderkey, o_orderstatus FROM orders "
      "ORDER BY o_orderstatus LIMIT 10 OFFSET 3",
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC, o_orderkey LIMIT 20",
      "SELECT COUNT(DISTINCT c_nationkey) FROM customer",
      "SELECT COUNT(*) FROM customer WHERE c_nationkey IN (1, 3, 5, 7)",
      "SELECT COUNT(*) FROM customer WHERE c_acctbal < 0 OR c_nationkey = 4",
  };
}

/// Scan-dominated aggregation queries: the speedup gate set. These are the
/// shapes where tuple-at-a-time execution pays per-row Value
/// materialization and virtual dispatch that the typed morsel pipeline
/// eliminates.
std::vector<std::string> SpeedupQueries() {
  return {
      "SELECT COUNT(*), SUM(o_totalprice), MIN(o_totalprice), "
      "MAX(o_totalprice) FROM orders WHERE o_totalprice > 10000",
      "SELECT COUNT(*), SUM(o_custkey) FROM orders "
      "WHERE o_custkey BETWEEN 50 AND 3000",
      "SELECT COUNT(*), SUM(o_totalprice) FROM orders "
      "WHERE o_totalprice BETWEEN 50000 AND 200000",
      "SELECT COUNT(*), SUM(c_acctbal), AVG(c_acctbal) FROM customer "
      "WHERE c_acctbal > 0",
  };
}

/// Check 1: vectorized execution is an implementation detail, not a
/// behaviour change — fingerprints and per-node stats must match the
/// row-at-a-time oracle exactly.
bool CheckParity(const HtapSystem& system) {
  std::vector<std::string> sqls = ParityQueries();
  // Add the generated workload: every pattern, a few seeds each.
  QueryGenerator gen(system.config().stats_scale_factor, 0xbe9c);
  for (QueryPattern pattern : AllQueryPatterns()) {
    QueryGenerator pgen(system.config().stats_scale_factor,
                        0xbe9c ^ static_cast<uint64_t>(pattern));
    for (int i = 0; i < 4; ++i) sqls.push_back(pgen.Generate(pattern).sql);
  }
  std::vector<PlannedQuery> planned = PlanAll(system, sqls);

  size_t fingerprint_mismatches = 0, stats_mismatches = 0, errors = 0;
  for (const PlannedQuery& pq : planned) {
    ExecStats row_stats, vec_stats;
    auto row_res = system.ExecuteWithMode(ExecMode::kRow, pq.plans.ap,
                                          pq.query, &row_stats);
    auto vec_res = system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap,
                                          pq.query, &vec_stats);
    if (row_res.ok() != vec_res.ok()) {
      std::fprintf(stderr, "executor ok-ness diverged: %s\n", pq.sql.c_str());
      ++errors;
      continue;
    }
    if (!row_res.ok()) continue;  // both error identically: fine
    if (row_res->Fingerprint() != vec_res->Fingerprint()) {
      std::fprintf(stderr, "fingerprint mismatch: %s\n", pq.sql.c_str());
      ++fingerprint_mismatches;
    }
    bool stats_same = row_stats.actual_rows.size() == vec_stats.actual_rows.size();
    for (const auto& [node, rows] : row_stats.actual_rows) {
      auto it = vec_stats.actual_rows.find(node);
      if (it == vec_stats.actual_rows.end() || it->second != rows) {
        stats_same = false;
      }
    }
    if (!stats_same) {
      std::fprintf(stderr, "ExecStats mismatch: %s\n", pq.sql.c_str());
      ++stats_mismatches;
    }
  }
  std::printf(
      "parity: %zu queries, %zu fingerprint mismatches, %zu stats "
      "mismatches, %zu errors (bars: 0, 0, 0)\n",
      planned.size(), fingerprint_mismatches, stats_mismatches, errors);
  if (fingerprint_mismatches != 0 || stats_mismatches != 0 || errors != 0) {
    std::fprintf(stderr, "FAIL: row/vectorized parity violated\n");
    return false;
  }
  return true;
}

/// A/B-alternated best-of-reps: each side's estimate is its fastest rep.
/// External load only ever slows a rep down, so min-of-reps converges on
/// the undisturbed cost, and alternating exposes both sides to the same
/// interference.
template <typename FnA, typename FnB>
void BestMillisAb(int reps, FnA&& a, FnB&& b, double* best_a,
                  double* best_b) {
  *best_a = 1e300;
  *best_b = 1e300;
  a();  // warmup (first-touch, branch predictors, worker pool spin-up)
  b();
  for (int rep = 0; rep < reps; ++rep) {
    {
      WallTimer timer;
      a();
      *best_a = std::min(*best_a, timer.ElapsedMillis());
    }
    {
      WallTimer timer;
      b();
      *best_b = std::min(*best_b, timer.ElapsedMillis());
    }
  }
}

/// Check 2: >= 3x single-thread geomean speedup over the row executor on
/// the scan-aggregate set.
bool CheckSingleThreadSpeedup(const HtapSystem& system, int reps) {
  std::vector<PlannedQuery> planned = PlanAll(system, SpeedupQueries());
  system.vec_executor()->set_num_workers(1);
  double log_sum = 0.0;
  for (const PlannedQuery& pq : planned) {
    double ms_row = 0.0, ms_vec = 0.0;
    BestMillisAb(
        reps,
        [&] {
          auto r = system.ExecuteWithMode(ExecMode::kRow, pq.plans.ap, pq.query);
          benchmark::DoNotOptimize(r);
        },
        [&] {
          auto r = system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap,
                                          pq.query);
          benchmark::DoNotOptimize(r);
        },
        &ms_row, &ms_vec);
    double speedup = ms_row / ms_vec;
    log_sum += std::log(speedup);
    std::printf("  row %8.3f ms | vec(1 worker) %8.3f ms | %5.1fx  %s\n",
                ms_row, ms_vec, speedup, pq.sql.c_str());
  }
  double geomean = std::exp(log_sum / static_cast<double>(planned.size()));
  std::printf(
      "single-thread speedup (%s backend): geomean %.1fx over %zu queries "
      "(bar: >= 3x)\n",
      kernels::BackendName(kernels::ActiveBackend()), geomean, planned.size());
  if (geomean < 3.0) {
    std::fprintf(stderr, "FAIL: single-thread speedup %.2fx < 3x\n", geomean);
    return false;
  }
  return true;
}

/// Check 3: morsel-driven scaling, 1 -> 4 workers. Meaningless on a
/// single-core machine (workers would time-slice one core), so auto-skip
/// there — CI runs this on multi-core runners.
bool CheckMorselScaling(const HtapSystem& system, int reps) {
  unsigned cores = std::thread::hardware_concurrency();
  if (cores < 2) {
    std::printf(
        "morsel scaling skipped: %u hardware thread(s) — need >= 2 for a "
        "meaningful 1->4 worker comparison\n",
        cores);
    return true;
  }
  std::vector<PlannedQuery> planned = PlanAll(
      system,
      {"SELECT COUNT(*), SUM(o_totalprice), MIN(o_totalprice), "
       "MAX(o_totalprice) FROM orders WHERE o_totalprice > 10000"});
  if (planned.empty()) {
    std::fprintf(stderr, "FAIL: scaling query did not plan\n");
    return false;
  }
  const PlannedQuery& pq = planned[0];
  double ms_1 = 0.0, ms_4 = 0.0;
  BestMillisAb(
      reps,
      [&] {
        system.vec_executor()->set_num_workers(1);
        auto r =
            system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query);
        benchmark::DoNotOptimize(r);
      },
      [&] {
        system.vec_executor()->set_num_workers(4);
        auto r =
            system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query);
        benchmark::DoNotOptimize(r);
      },
      &ms_1, &ms_4);
  double scaling = ms_1 / ms_4;
  std::printf(
      "morsel scaling (%u cores): 1 worker %.3f ms, 4 workers %.3f ms -> "
      "%.2fx (bar: >= 1.5x)\n",
      cores, ms_1, ms_4, scaling);
  if (scaling < 1.5) {
    std::fprintf(stderr, "FAIL: 1->4 worker scaling %.2fx < 1.5x\n", scaling);
    return false;
  }
  return true;
}

void BM_RowExecutorScanAgg(benchmark::State& state) {
  HtapSystem* system = SharedSystem().get();
  if (system == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  static std::vector<PlannedQuery> planned =
      PlanAll(*system, SpeedupQueries());
  const PlannedQuery& pq = planned[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system->ExecuteWithMode(ExecMode::kRow, pq.plans.ap, pq.query));
  }
  state.SetLabel(pq.sql.substr(0, 48));
}
BENCHMARK(BM_RowExecutorScanAgg)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_VecExecutorScanAgg(benchmark::State& state) {
  HtapSystem* system = SharedSystem().get();
  if (system == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  static std::vector<PlannedQuery> planned =
      PlanAll(*system, SpeedupQueries());
  const PlannedQuery& pq = planned[static_cast<size_t>(state.range(0))];
  system->vec_executor()->set_num_workers(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system->ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query));
  }
  state.SetLabel(pq.sql.substr(0, 48));
}
BENCHMARK(BM_VecExecutorScanAgg)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_VecExecutorJoinPipeline(benchmark::State& state) {
  HtapSystem* system = SharedSystem().get();
  if (system == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  static std::vector<PlannedQuery> planned = PlanAll(
      *system,
      {"SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
       "AND o_totalprice > 100000"});
  const PlannedQuery& pq = planned[0];
  system->vec_executor()->set_num_workers(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system->ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query));
  }
}
BENCHMARK(BM_VecExecutorJoinPipeline)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool self_check = false;
  // Strip --self-check before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) {
      self_check = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (SharedSystem() == nullptr) return 1;
  HtapSystem* system = SharedSystem().get();

  if (!self_check) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }

  const int reps = self_check ? 7 : 15;
  std::printf("\n=== vectorized executor self-checks%s ===\n",
              self_check ? " (quick)" : "");
  bool ok = true;
  ok = CheckParity(*system) && ok;
  ok = CheckSingleThreadSpeedup(*system, reps) && ok;
  ok = CheckMorselScaling(*system, reps) && ok;
  std::printf("%s\n", ok ? "ALL CHECKS PASSED" : "CHECKS FAILED");
  return ok ? 0 : 1;
}
