// Vectorized AP executor benchmark + self-checks (src/engine/vec_executor.h,
// morsel.h, vec_batch.h).
//
// The acceptance bar this file enforces (exit code != 0 on violation):
//   1. Parity: over a broad AP query set (hand-picked operator coverage
//      plus every generated workload pattern), the vectorized morsel-driven
//      executor and the row-at-a-time oracle produce byte-identical result
//      fingerprints and identical per-node ExecStats.
//   2. Single-thread speedup: on scan-dominated aggregation queries — the
//      tuple-at-a-time AP path the vectorized pipeline replaces — the
//      vectorized executor with ONE morsel worker is >= 3x faster
//      (geomean) than the row executor on the same AP plans.
//   3. Morsel scaling: 4 workers beat 1 worker by >= 1.5x on a
//      scan-aggregate query (auto-skipped on machines with < 2 cores,
//      where the extra workers just contend for one core).
//   4. Join-probe speedup: on join-heavy pipelines (two/three-way joins
//      plus generated kJoinStarChain plans, sifted and bushy), the batch
//      probe (flat JoinTable, gathered key columns, late materialization)
//      is >= 2x faster (geomean) than the row-at-a-time probe baseline
//      (VecProbeMode::kRowAtATime) at one worker — with byte-identical
//      fingerprints between the two modes.
//
// `--self-check` runs reduced-rep versions of the same checks (the CI
// engine job's fast path); without it the full benchmark table prints too.
// Every run also writes machine-readable results (geomean speedups,
// per-query timings and plan-rows/sec) to BENCH_vexec.json in the working
// directory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/kernels.h"
#include "common/sim_clock.h"
#include "engine/htap_system.h"
#include "workload/query_generator.h"

namespace {

using namespace htapex;

/// Loaded-data fixture: statistics at the loaded scale so generated
/// queries hit real keys. SF 0.05 gives orders ~75k rows (~19 morsels).
std::unique_ptr<HtapSystem>& SharedSystem() {
  static std::unique_ptr<HtapSystem> system = [] {
    auto s = std::make_unique<HtapSystem>();
    HtapConfig config;
    config.stats_scale_factor = 0.05;
    config.data_scale_factor = 0.05;
    Status st = s->Init(config);
    if (!st.ok()) {
      std::fprintf(stderr, "system init failed: %s\n", st.ToString().c_str());
      s.reset();
    }
    return s;
  }();
  return system;
}

/// A bound + planned query, reused across reps so timing excludes the
/// front end.
struct PlannedQuery {
  std::string sql;
  BoundQuery query;
  PlanPair plans;
};

std::vector<PlannedQuery> PlanAll(const HtapSystem& system,
                                  const std::vector<std::string>& sqls) {
  std::vector<PlannedQuery> out;
  for (const std::string& sql : sqls) {
    auto bound = system.Bind(sql);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind failed (%s): %s\n", sql.c_str(),
                   bound.status().ToString().c_str());
      continue;
    }
    auto plans = system.PlanBoth(*bound);
    if (!plans.ok()) continue;
    out.push_back({sql, std::move(*bound), std::move(*plans)});
  }
  return out;
}

/// Operator-coverage parity set: every vectorized code path (typed-mask
/// scan, per-row fallback, typed and generic fused aggregation, join
/// pipelines, Top-N, sort, distinct) plus TP-favoured shapes for contrast.
std::vector<std::string> ParityQueries() {
  return {
      "SELECT COUNT(*), SUM(o_totalprice), MIN(o_totalprice), "
      "MAX(o_totalprice) FROM orders WHERE o_totalprice > 50000",
      "SELECT COUNT(*), SUM(o_custkey), AVG(o_custkey) FROM orders "
      "WHERE o_custkey BETWEEN 100 AND 2000",
      "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'",
      "SELECT COUNT(*) FROM customer WHERE c_name LIKE 'customer#0000001%'",
      "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer "
      "GROUP BY c_nationkey ORDER BY c_nationkey",
      "SELECT n_name, COUNT(*) FROM nation, customer "
      "WHERE n_nationkey = c_nationkey GROUP BY n_name",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_totalprice > 100000",
      "SELECT COUNT(*) FROM customer, nation, orders "
      "WHERE o_custkey = c_custkey AND n_nationkey = c_nationkey "
      "AND n_name = 'egypt'",
      "SELECT o_orderkey, o_orderstatus FROM orders "
      "ORDER BY o_orderstatus LIMIT 10 OFFSET 3",
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC, o_orderkey LIMIT 20",
      "SELECT COUNT(DISTINCT c_nationkey) FROM customer",
      "SELECT COUNT(*) FROM customer WHERE c_nationkey IN (1, 3, 5, 7)",
      "SELECT COUNT(*) FROM customer WHERE c_acctbal < 0 OR c_nationkey = 4",
  };
}

/// Scan-dominated aggregation queries: the speedup gate set. These are the
/// shapes where tuple-at-a-time execution pays per-row Value
/// materialization and virtual dispatch that the typed morsel pipeline
/// eliminates.
std::vector<std::string> SpeedupQueries() {
  return {
      "SELECT COUNT(*), SUM(o_totalprice), MIN(o_totalprice), "
      "MAX(o_totalprice) FROM orders WHERE o_totalprice > 10000",
      "SELECT COUNT(*), SUM(o_custkey) FROM orders "
      "WHERE o_custkey BETWEEN 50 AND 3000",
      "SELECT COUNT(*), SUM(o_totalprice) FROM orders "
      "WHERE o_totalprice BETWEEN 50000 AND 200000",
      "SELECT COUNT(*), SUM(c_acctbal), AVG(c_acctbal) FROM customer "
      "WHERE c_acctbal > 0",
  };
}

/// Check 1: vectorized execution is an implementation detail, not a
/// behaviour change — fingerprints and per-node stats must match the
/// row-at-a-time oracle exactly.
bool CheckParity(const HtapSystem& system) {
  std::vector<std::string> sqls = ParityQueries();
  // Add the generated workload: every pattern, a few seeds each.
  QueryGenerator gen(system.config().stats_scale_factor, 0xbe9c);
  for (QueryPattern pattern : AllQueryPatterns()) {
    QueryGenerator pgen(system.config().stats_scale_factor,
                        0xbe9c ^ static_cast<uint64_t>(pattern));
    for (int i = 0; i < 4; ++i) sqls.push_back(pgen.Generate(pattern).sql);
  }
  std::vector<PlannedQuery> planned = PlanAll(system, sqls);

  size_t fingerprint_mismatches = 0, stats_mismatches = 0, errors = 0;
  for (const PlannedQuery& pq : planned) {
    ExecStats row_stats, vec_stats;
    auto row_res = system.ExecuteWithMode(ExecMode::kRow, pq.plans.ap,
                                          pq.query, &row_stats);
    auto vec_res = system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap,
                                          pq.query, &vec_stats);
    if (row_res.ok() != vec_res.ok()) {
      std::fprintf(stderr, "executor ok-ness diverged: %s\n", pq.sql.c_str());
      ++errors;
      continue;
    }
    if (!row_res.ok()) continue;  // both error identically: fine
    if (row_res->Fingerprint() != vec_res->Fingerprint()) {
      std::fprintf(stderr, "fingerprint mismatch: %s\n", pq.sql.c_str());
      ++fingerprint_mismatches;
    }
    bool stats_same = row_stats.actual_rows.size() == vec_stats.actual_rows.size();
    for (const auto& [node, rows] : row_stats.actual_rows) {
      auto it = vec_stats.actual_rows.find(node);
      if (it == vec_stats.actual_rows.end() || it->second != rows) {
        stats_same = false;
      }
    }
    if (!stats_same) {
      std::fprintf(stderr, "ExecStats mismatch: %s\n", pq.sql.c_str());
      ++stats_mismatches;
    }
  }
  std::printf(
      "parity: %zu queries, %zu fingerprint mismatches, %zu stats "
      "mismatches, %zu errors (bars: 0, 0, 0)\n",
      planned.size(), fingerprint_mismatches, stats_mismatches, errors);
  if (fingerprint_mismatches != 0 || stats_mismatches != 0 || errors != 0) {
    std::fprintf(stderr, "FAIL: row/vectorized parity violated\n");
    return false;
  }
  return true;
}

/// A/B-alternated best-of-reps: each side's estimate is its fastest rep.
/// External load only ever slows a rep down, so min-of-reps converges on
/// the undisturbed cost, and alternating exposes both sides to the same
/// interference.
template <typename FnA, typename FnB>
void BestMillisAb(int reps, FnA&& a, FnB&& b, double* best_a,
                  double* best_b) {
  *best_a = 1e300;
  *best_b = 1e300;
  a();  // warmup (first-touch, branch predictors, worker pool spin-up)
  b();
  for (int rep = 0; rep < reps; ++rep) {
    {
      WallTimer timer;
      a();
      *best_a = std::min(*best_a, timer.ElapsedMillis());
    }
    {
      WallTimer timer;
      b();
      *best_b = std::min(*best_b, timer.ElapsedMillis());
    }
  }
}

/// One timed query for the machine-readable report.
struct BenchEntry {
  std::string sql;
  double ms_a = 0.0;  // baseline side
  double ms_b = 0.0;  // vectorized / batch side
  double speedup = 0.0;
  /// Sum of per-node actual rows flowing through the plan, divided by the
  /// fast side's time — a plan-throughput figure comparable across runs.
  double rows_per_sec = 0.0;
};

/// Total rows flowing through the AP plan (sum of per-node actual
/// cardinalities), for the rows/sec figures in BENCH_vexec.json.
size_t PlanRows(const HtapSystem& system, const PlannedQuery& pq) {
  ExecStats stats;
  auto res =
      system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query, &stats);
  if (!res.ok()) return 0;
  size_t total = 0;
  for (const auto& [node, rows] : stats.actual_rows) total += rows;
  return total;
}

/// Check 2: >= 3x single-thread geomean speedup over the row executor on
/// the scan-aggregate set.
bool CheckSingleThreadSpeedup(const HtapSystem& system, int reps,
                              double* geomean_out,
                              std::vector<BenchEntry>* entries) {
  std::vector<PlannedQuery> planned = PlanAll(system, SpeedupQueries());
  system.vec_executor()->set_num_workers(1);
  double log_sum = 0.0;
  for (const PlannedQuery& pq : planned) {
    double ms_row = 0.0, ms_vec = 0.0;
    BestMillisAb(
        reps,
        [&] {
          auto r = system.ExecuteWithMode(ExecMode::kRow, pq.plans.ap, pq.query);
          benchmark::DoNotOptimize(r);
        },
        [&] {
          auto r = system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap,
                                          pq.query);
          benchmark::DoNotOptimize(r);
        },
        &ms_row, &ms_vec);
    double speedup = ms_row / ms_vec;
    log_sum += std::log(speedup);
    std::printf("  row %8.3f ms | vec(1 worker) %8.3f ms | %5.1fx  %s\n",
                ms_row, ms_vec, speedup, pq.sql.c_str());
    entries->push_back(
        {pq.sql, ms_row, ms_vec, speedup,
         static_cast<double>(PlanRows(system, pq)) / (ms_vec / 1000.0)});
  }
  double geomean = std::exp(log_sum / static_cast<double>(planned.size()));
  *geomean_out = geomean;
  std::printf(
      "single-thread speedup (%s backend): geomean %.1fx over %zu queries "
      "(bar: >= 3x)\n",
      kernels::BackendName(kernels::ActiveBackend()), geomean, planned.size());
  if (geomean < 3.0) {
    std::fprintf(stderr, "FAIL: single-thread speedup %.2fx < 3x\n", geomean);
    return false;
  }
  return true;
}

/// Join-heavy pipeline set for the batch-probe gate: hand-written two- and
/// three-way joins over the largest tables plus generated kJoinStarChain
/// plans (4-5 table star/chain shapes the optimizer sifts and bushes).
std::vector<std::string> JoinQueries(const HtapSystem& system) {
  std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_totalprice > 50000",
      "SELECT n_name, COUNT(*), SUM(o_totalprice) FROM nation, customer, "
      "orders WHERE o_custkey = c_custkey AND n_nationkey = c_nationkey "
      "GROUP BY n_name",
  };
  QueryGenerator gen(system.config().stats_scale_factor, 0x517a);
  for (int i = 0; i < 3; ++i) {
    sqls.push_back(gen.Generate(QueryPattern::kJoinStarChain).sql);
  }
  return sqls;
}

/// Check 4: the batch probe must beat the row-at-a-time probe baseline by
/// >= 2x (geomean) on the join-heavy set, at identical fingerprints.
bool CheckJoinProbeSpeedup(const HtapSystem& system, int reps,
                           double* geomean_out,
                           std::vector<BenchEntry>* entries) {
  std::vector<PlannedQuery> planned = PlanAll(system, JoinQueries(system));
  VecExecutor* vexec = system.vec_executor();
  vexec->set_num_workers(1);
  double log_sum = 0.0;
  size_t counted = 0;
  bool ok = true;
  for (const PlannedQuery& pq : planned) {
    vexec->set_probe_mode(VecProbeMode::kRowAtATime);
    auto res_old =
        system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query);
    vexec->set_probe_mode(VecProbeMode::kBatch);
    auto res_new =
        system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query);
    if (res_old.ok() != res_new.ok() ||
        (res_old.ok() && res_old->Fingerprint() != res_new->Fingerprint())) {
      std::fprintf(stderr, "probe-mode fingerprint mismatch: %s\n",
                   pq.sql.c_str());
      ok = false;
      continue;
    }
    if (!res_old.ok()) continue;
    double ms_old = 0.0, ms_new = 0.0;
    BestMillisAb(
        reps,
        [&] {
          vexec->set_probe_mode(VecProbeMode::kRowAtATime);
          auto r = system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap,
                                          pq.query);
          benchmark::DoNotOptimize(r);
        },
        [&] {
          vexec->set_probe_mode(VecProbeMode::kBatch);
          auto r = system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap,
                                          pq.query);
          benchmark::DoNotOptimize(r);
        },
        &ms_old, &ms_new);
    double speedup = ms_old / ms_new;
    log_sum += std::log(speedup);
    ++counted;
    std::printf(
        "  row-probe %8.3f ms | batch-probe %8.3f ms | %5.1fx  %s\n", ms_old,
        ms_new, speedup, pq.sql.c_str());
    entries->push_back(
        {pq.sql, ms_old, ms_new, speedup,
         static_cast<double>(PlanRows(system, pq)) / (ms_new / 1000.0)});
  }
  vexec->set_probe_mode(VecProbeMode::kBatch);
  if (counted == 0) {
    std::fprintf(stderr, "FAIL: no join queries ran\n");
    return false;
  }
  double geomean = std::exp(log_sum / static_cast<double>(counted));
  *geomean_out = geomean;
  std::printf(
      "join-probe speedup (%s backend): geomean %.1fx over %zu queries "
      "(bar: >= 2x)\n",
      kernels::BackendName(kernels::ActiveBackend()), geomean, counted);
  if (geomean < 2.0) {
    std::fprintf(stderr, "FAIL: join-probe speedup %.2fx < 2x\n", geomean);
    return false;
  }
  return ok;
}

void AppendJsonEntries(std::string* out, const std::vector<BenchEntry>& v,
                       const char* a_name, const char* b_name) {
  for (size_t i = 0; i < v.size(); ++i) {
    char buf[256];
    std::string sql = v[i].sql;
    for (char& c : sql) {
      if (c == '"' || c == '\\') c = '\'';
    }
    *out += "    {\"sql\": \"" + sql + "\", ";
    std::snprintf(buf, sizeof(buf),
                  "\"%s_ms\": %.4f, \"%s_ms\": %.4f, \"speedup\": %.3f, "
                  "\"plan_rows_per_sec\": %.0f}",
                  a_name, v[i].ms_a, b_name, v[i].ms_b, v[i].speedup,
                  v[i].rows_per_sec);
    *out += buf;
    *out += i + 1 == v.size() ? "\n" : ",\n";
  }
}

/// Writes the machine-readable report next to the binary's working dir.
void WriteBenchJson(double scan_geomean, double join_geomean,
                    const std::vector<BenchEntry>& scan_entries,
                    const std::vector<BenchEntry>& join_entries) {
  std::string json = "{\n";
  json += "  \"backend\": \"" +
          std::string(kernels::BackendName(kernels::ActiveBackend())) + "\",\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "  \"scan_agg_geomean_speedup\": %.3f,\n"
                "  \"join_probe_geomean_speedup\": %.3f,\n",
                scan_geomean, join_geomean);
  json += buf;
  json += "  \"scan_agg\": [\n";
  AppendJsonEntries(&json, scan_entries, "row", "vec");
  json += "  ],\n  \"join_probe\": [\n";
  AppendJsonEntries(&json, join_entries, "row_probe", "batch_probe");
  json += "  ]\n}\n";
  std::FILE* f = std::fopen("BENCH_vexec.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not write BENCH_vexec.json\n");
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote BENCH_vexec.json\n");
}

/// Check 3: morsel-driven scaling, 1 -> 4 workers. Meaningless on a
/// single-core machine (workers would time-slice one core), so auto-skip
/// there — CI runs this on multi-core runners.
bool CheckMorselScaling(const HtapSystem& system, int reps) {
  unsigned cores = std::thread::hardware_concurrency();
  if (cores < 2) {
    std::printf(
        "morsel scaling skipped: %u hardware thread(s) — need >= 2 for a "
        "meaningful 1->4 worker comparison\n",
        cores);
    return true;
  }
  std::vector<PlannedQuery> planned = PlanAll(
      system,
      {"SELECT COUNT(*), SUM(o_totalprice), MIN(o_totalprice), "
       "MAX(o_totalprice) FROM orders WHERE o_totalprice > 10000"});
  if (planned.empty()) {
    std::fprintf(stderr, "FAIL: scaling query did not plan\n");
    return false;
  }
  const PlannedQuery& pq = planned[0];
  double ms_1 = 0.0, ms_4 = 0.0;
  BestMillisAb(
      reps,
      [&] {
        system.vec_executor()->set_num_workers(1);
        auto r =
            system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query);
        benchmark::DoNotOptimize(r);
      },
      [&] {
        system.vec_executor()->set_num_workers(4);
        auto r =
            system.ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query);
        benchmark::DoNotOptimize(r);
      },
      &ms_1, &ms_4);
  double scaling = ms_1 / ms_4;
  std::printf(
      "morsel scaling (%u cores): 1 worker %.3f ms, 4 workers %.3f ms -> "
      "%.2fx (bar: >= 1.5x)\n",
      cores, ms_1, ms_4, scaling);
  if (scaling < 1.5) {
    std::fprintf(stderr, "FAIL: 1->4 worker scaling %.2fx < 1.5x\n", scaling);
    return false;
  }
  return true;
}

void BM_RowExecutorScanAgg(benchmark::State& state) {
  HtapSystem* system = SharedSystem().get();
  if (system == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  static std::vector<PlannedQuery> planned =
      PlanAll(*system, SpeedupQueries());
  const PlannedQuery& pq = planned[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system->ExecuteWithMode(ExecMode::kRow, pq.plans.ap, pq.query));
  }
  state.SetLabel(pq.sql.substr(0, 48));
}
BENCHMARK(BM_RowExecutorScanAgg)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_VecExecutorScanAgg(benchmark::State& state) {
  HtapSystem* system = SharedSystem().get();
  if (system == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  static std::vector<PlannedQuery> planned =
      PlanAll(*system, SpeedupQueries());
  const PlannedQuery& pq = planned[static_cast<size_t>(state.range(0))];
  system->vec_executor()->set_num_workers(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system->ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query));
  }
  state.SetLabel(pq.sql.substr(0, 48));
}
BENCHMARK(BM_VecExecutorScanAgg)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_VecExecutorJoinPipeline(benchmark::State& state) {
  HtapSystem* system = SharedSystem().get();
  if (system == nullptr) {
    state.SkipWithError("fixture init failed");
    return;
  }
  static std::vector<PlannedQuery> planned = PlanAll(
      *system,
      {"SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
       "AND o_totalprice > 100000"});
  const PlannedQuery& pq = planned[0];
  system->vec_executor()->set_num_workers(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system->ExecuteWithMode(ExecMode::kVectorized, pq.plans.ap, pq.query));
  }
}
BENCHMARK(BM_VecExecutorJoinPipeline)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool self_check = false;
  // Strip --self-check before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) {
      self_check = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (SharedSystem() == nullptr) return 1;
  HtapSystem* system = SharedSystem().get();

  if (!self_check) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }

  const int reps = self_check ? 7 : 15;
  std::printf("\n=== vectorized executor self-checks%s ===\n",
              self_check ? " (quick)" : "");
  bool ok = true;
  double scan_geomean = 0.0, join_geomean = 0.0;
  std::vector<BenchEntry> scan_entries, join_entries;
  ok = CheckParity(*system) && ok;
  ok = CheckSingleThreadSpeedup(*system, reps, &scan_geomean, &scan_entries) &&
       ok;
  ok = CheckJoinProbeSpeedup(*system, reps, &join_geomean, &join_entries) && ok;
  ok = CheckMorselScaling(*system, reps) && ok;
  WriteBenchJson(scan_geomean, join_geomean, scan_entries, join_entries);
  std::printf("%s\n", ok ? "ALL CHECKS PASSED" : "CHECKS FAILED");
  return ok ? 0 : 1;
}
