#ifndef HTAPEX_BENCH_BENCH_COMMON_H_
#define HTAPEX_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/htap_explainer.h"
#include "engine/htap_system.h"
#include "workload/query_generator.h"

namespace htapex {
namespace bench {

/// Shared experiment fixture: plan-only HTAP system at the paper's SF=100
/// statistics scale, a trained smart router, and a 20-entry knowledge base.
struct Fixture {
  std::unique_ptr<HtapSystem> system;
  std::unique_ptr<HtapExplainer> explainer;

  static std::unique_ptr<Fixture> Make(ExplainerConfig config = {},
                                       bool build_kb = true) {
    auto f = std::make_unique<Fixture>();
    f->system = std::make_unique<HtapSystem>();
    HtapConfig sys_config;
    sys_config.stats_scale_factor = 100.0;
    sys_config.data_scale_factor = 0.0;  // plan-only: experiments need plans
    Status st = f->system->Init(sys_config);
    if (!st.ok()) {
      std::fprintf(stderr, "system init failed: %s\n", st.ToString().c_str());
      return nullptr;
    }
    f->explainer =
        std::make_unique<HtapExplainer>(f->system.get(), std::move(config));
    auto train = f->explainer->TrainRouter();
    if (!train.ok()) {
      std::fprintf(stderr, "router training failed: %s\n",
                   train.status().ToString().c_str());
      return nullptr;
    }
    if (build_kb) {
      st = f->explainer->BuildDefaultKnowledgeBase();
      if (!st.ok()) {
        std::fprintf(stderr, "kb build failed: %s\n", st.ToString().c_str());
        return nullptr;
      }
    }
    return f;
  }
};

/// The paper's 200-query test set.
inline std::vector<GeneratedQuery> TestWorkload(const HtapSystem& system,
                                                int n = 200,
                                                uint64_t seed = 0x7e57) {
  QueryGenerator gen(system.config().stats_scale_factor, seed);
  return gen.GenerateMix(n);
}

/// Aggregated grading counts over a workload.
struct GradeCounts {
  int accurate = 0;
  int imprecise = 0;
  int wrong = 0;
  int none = 0;
  int total() const { return accurate + imprecise + wrong + none; }
  double accuracy() const {
    return total() == 0 ? 0 : 100.0 * accurate / total();
  }
  double none_rate() const {
    return total() == 0 ? 0 : 100.0 * none / total();
  }
  void Add(ExplanationGrade g) {
    switch (g) {
      case ExplanationGrade::kAccurate:
        ++accurate;
        break;
      case ExplanationGrade::kImprecise:
        ++imprecise;
        break;
      case ExplanationGrade::kWrong:
        ++wrong;
        break;
      case ExplanationGrade::kNone:
        ++none;
        break;
    }
  }
};

}  // namespace bench
}  // namespace htapex

#endif  // HTAPEX_BENCH_BENCH_COMMON_H_
