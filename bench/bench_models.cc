// Experiment A3 (paper Section VI-B): model comparison. The paper ran both
// Doubao and ChatGPT 4.0 and "observed minimal differences in accuracy
// between them". The two simulated personas differ in phrasing style and
// token rate, not in reasoning quality.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/sim_clock.h"

int main() {
  using namespace htapex;
  using namespace htapex::bench;

  std::printf("=== A3: model comparison (K=2, 200 test queries) ===\n");
  std::printf("%-12s %-10s %-10s %-8s %-14s\n", "persona", "accurate",
              "imprecise", "none", "gen time (sim)");
  for (const char* persona : {"doubao", "gpt4"}) {
    ExplainerConfig config;
    config.persona = persona;
    auto fixture = Fixture::Make(config);
    if (fixture == nullptr) return 1;
    auto workload = TestWorkload(*fixture->system);
    GradeCounts counts;
    SimClock llm_clock;  // total simulated model time across the workload
    for (const GeneratedQuery& gq : workload) {
      auto result = fixture->explainer->Explain(gq.sql);
      if (!result.ok()) return 1;
      counts.Add(result->grade.grade);
      llm_clock.AdvanceMillis(result->generation.timing.generation_ms);
    }
    std::printf("%-12s %5.1f%%     %5.1f%%     %5.1f%%  %8.1fs avg\n", persona,
                counts.accuracy(), 100.0 * counts.imprecise / counts.total(),
                counts.none_rate(),
                llm_clock.now_seconds() / counts.total());
  }
  std::printf("paper: minimal accuracy difference between Doubao and "
              "ChatGPT 4.0\n");
  return 0;
}
