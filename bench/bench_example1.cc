// Experiment E1: the paper's demonstrative case (Example 1) with Tables I,
// II, and III — the 3-table join whose TP plan takes seconds while AP
// finishes in hundreds of milliseconds, the prompt sections, both EXPLAIN
// trees, and the explanations produced by the expert, our RAG approach, and
// the DBG-PT-style baseline.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/string_util.h"

namespace {

constexpr const char* kExample1 =
    "SELECT COUNT(*) FROM customer, nation, orders "
    "WHERE SUBSTRING(c_phone, 1, 2) IN ('20','40','22','30','39','42','21') "
    "AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
    "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
    "AND n_nationkey = c_nationkey";

}  // namespace

int main() {
  using namespace htapex;
  using namespace htapex::bench;

  auto fixture = Fixture::Make();
  if (fixture == nullptr) return 1;
  // The paper's user context: an extra index on customer.c_phone exists
  // (and is defeated by the SUBSTRING predicate).
  IndexDef idx{"idx_c_phone", "customer", {"c_phone"}, false, false};
  if (!fixture->system->CreateIndex(idx).ok()) return 1;

  auto ours = fixture->explainer->Explain(kExample1);
  if (!ours.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 ours.status().ToString().c_str());
    return 1;
  }

  ExplainerConfig baseline_config;
  baseline_config.use_rag = false;
  HtapExplainer baseline(fixture->system.get(), baseline_config);
  auto dbgpt = baseline.Explain(kExample1);
  if (!dbgpt.ok()) return 1;

  std::printf("=== E1: Example 1 ===\n%s\n\n", kExample1);
  std::printf("TP latency (modelled, SF=100): %s     [paper: 5.80s]\n",
              FormatMillis(ours->outcome.tp_latency_ms).c_str());
  std::printf("AP latency (modelled, SF=100): %s     [paper: 310ms]\n",
              FormatMillis(ours->outcome.ap_latency_ms).c_str());
  std::printf("faster engine: %s (%.1fx)    [paper: AP, 18.7x]\n\n",
              EngineName(ours->outcome.faster), ours->outcome.speedup());

  std::printf("--- Table I: prompt sections ---\n");
  std::printf("[Background information]\n%s\n\n",
              ours->prompt.background.c_str());
  std::printf("[Task description]\n%s\n\n", ours->prompt.task.c_str());
  std::printf("[Additional user context]\n%s\n\n",
              ours->prompt.user_context.c_str());

  std::printf("--- Table II: details of TP's plan ---\n%s\n\n",
              ours->outcome.plans.tp.Explain().c_str());
  std::printf("--- Table II: details of AP's plan ---\n%s\n\n",
              ours->outcome.plans.ap.Explain().c_str());

  std::printf("--- Table III: explanation by experts ---\n%s\n\n",
              ours->truth.explanation.c_str());
  std::printf("--- Table III: explanation by our approach ---\n%s\n",
              ours->generation.text.c_str());
  std::printf("(grade: %s — %s; retrieved %zu knowledge items)\n\n",
              ExplanationGradeName(ours->grade.grade),
              ours->grade.reason.c_str(), ours->retrieval.items.size());
  std::printf("--- Table III: explanation by DBG-PT ---\n%s\n",
              dbgpt->generation.text.c_str());
  std::printf("(grade: %s — %s)\n\n", ExplanationGradeName(dbgpt->grade.grade),
              dbgpt->grade.reason.c_str());

  std::printf("--- follow-up conversation (Section VI-B) ---\n");
  std::printf("user: why does the predicate on the customer table not "
              "benefit from the index on c_phone?\n");
  std::printf("assistant: %s\n",
              fixture->explainer
                  ->AnswerFollowUp(*ours,
                                   "why does the predicate on customer not "
                                   "benefit from the index on c_phone?")
                  .c_str());
  return 0;
}
