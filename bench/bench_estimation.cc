// Extension experiment M5: cardinality-estimation quality (q-error). The
// optimizers' estimates drive the latency model and the plan features the
// router embeds; systematic misestimation is also one reason post-execution
// explanation needs historical knowledge at all (DBG-PT's "lack of context
// for relative values"). This bench executes a mixed workload with
// EXPLAIN-ANALYZE instrumentation (stats scale == data scale, so estimates
// and actuals are directly comparable) and reports q-error per operator.
//
// q-error = max(estimate/actual, actual/estimate), lower-bounded rows at 1.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "engine/htap_system.h"
#include "workload/query_generator.h"

namespace {

using namespace htapex;

void Collect(const PlanNode& node, const ExecStats& stats,
             std::map<PlanOp, std::vector<double>>* qerrors) {
  auto it = stats.actual_rows.find(&node);
  if (it != stats.actual_rows.end()) {
    double est = std::max(node.estimated_rows, 1.0);
    double act = std::max(static_cast<double>(it->second), 1.0);
    (*qerrors)[node.op].push_back(std::max(est / act, act / est));
  }
  for (const auto& c : node.children) Collect(*c, stats, qerrors);
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

}  // namespace

int main() {
  HtapSystem system;
  HtapConfig config;
  config.stats_scale_factor = 0.02;  // statistics match the loaded data
  config.data_scale_factor = 0.02;
  if (!system.Init(config).ok()) return 1;

  QueryGenerator gen(config.stats_scale_factor, 0xe577);
  std::map<PlanOp, std::vector<double>> qerrors;
  int executed = 0;
  for (const GeneratedQuery& gq : gen.GenerateMix(120)) {
    auto bound = system.Bind(gq.sql);
    if (!bound.ok()) continue;
    auto plans = system.PlanBoth(*bound);
    if (!plans.ok()) continue;
    for (const PhysicalPlan* plan : {&plans->tp, &plans->ap}) {
      ExecStats stats;
      auto result = system.Execute(*plan, *bound, &stats);
      if (!result.ok()) continue;
      Collect(*plan->root, stats, &qerrors);
    }
    ++executed;
  }

  std::printf("=== M5: cardinality estimation quality (q-error), %d queries "
              "x 2 engines ===\n", executed);
  std::printf("%-26s %6s %8s %8s %8s\n", "operator", "n", "median", "p90",
              "max");
  for (auto& [op, errors] : qerrors) {
    std::vector<double> copy = errors;
    std::printf("%-26s %6zu %8.2f %8.2f %8.1f\n", PlanOpName(op),
                errors.size(), Percentile(&copy, 0.5), Percentile(&copy, 0.9),
                Percentile(&copy, 1.0));
  }
  std::printf(
      "\nreading: scans estimate well (NDV/range statistics); function "
      "predicates and join chains drift — the estimation gap that makes "
      "historical execution knowledge valuable for explanation.\n");
  return 0;
}
