// Experiment A1 (paper Section VI-B): explanation accuracy of the
// RAG-augmented LLM on a 200-query synthetic test set against a 20-entry
// expert knowledge base with K=2 retrieval.
//
// Paper numbers: 91% accurate; 9% less precise, of which 3.5% None.
// Also reproduced here: the expert feedback loop — failures are corrected,
// inserted into the KB, and the same test set is re-run.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace htapex;
  using namespace htapex::bench;

  ExplainerConfig config;
  config.retrieval_k = 2;
  auto fixture = Fixture::Make(config);
  if (fixture == nullptr) return 1;

  auto workload = TestWorkload(*fixture->system);
  std::printf("=== A1: explanation accuracy (K=%d, KB=%zu entries, %zu test "
              "queries) ===\n",
              config.retrieval_k, fixture->explainer->knowledge_base().size(),
              workload.size());

  GradeCounts counts;
  GradeCounts per_pattern[16];
  std::vector<ExplainResult> failures;
  for (const GeneratedQuery& gq : workload) {
    auto result = fixture->explainer->Explain(gq.sql);
    if (!result.ok()) {
      std::fprintf(stderr, "explain failed for %s: %s\n", gq.sql.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    counts.Add(result->grade.grade);
    per_pattern[static_cast<int>(gq.pattern)].Add(result->grade.grade);
    if (result->grade.grade != ExplanationGrade::kAccurate) {
      failures.push_back(std::move(*result));
    }
  }

  std::printf("accurate   %3d  (%.1f%%)\n", counts.accurate, counts.accuracy());
  std::printf("imprecise  %3d  (%.1f%%)\n", counts.imprecise,
              100.0 * counts.imprecise / counts.total());
  std::printf("wrong      %3d  (%.1f%%)\n", counts.wrong,
              100.0 * counts.wrong / counts.total());
  std::printf("none       %3d  (%.1f%%)\n", counts.none, counts.none_rate());
  std::printf("paper:     91%% accurate, 9%% less precise (3.5%% None)\n\n");

  std::printf("--- per pattern ---\n");
  for (QueryPattern p : AllQueryPatterns()) {
    const GradeCounts& c = per_pattern[static_cast<int>(p)];
    if (c.total() == 0) continue;
    std::printf("%-20s n=%3d  accurate=%.0f%%  none=%.0f%%\n",
                QueryPatternName(p), c.total(), c.accuracy(), c.none_rate());
  }

  // Expert feedback loop: corrections join the KB; the previously failing
  // queries are re-run (Section VI-B: "explanations will be corrected by
  // experts and incorporated into the knowledge base ... enhancing its
  // accuracy for subsequent queries").
  std::printf("\n--- expert feedback loop ---\n");
  for (const ExplainResult& f : failures) {
    Status st = fixture->explainer->IncorporateCorrection(f);
    if (!st.ok()) {
      std::fprintf(stderr, "correction failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  GradeCounts after;
  for (const GeneratedQuery& gq : workload) {
    auto result = fixture->explainer->Explain(gq.sql);
    if (!result.ok()) return 1;
    after.Add(result->grade.grade);
  }
  std::printf("KB grew to %zu entries after %zu corrections\n",
              fixture->explainer->knowledge_base().size(), failures.size());
  std::printf("accuracy before feedback: %.1f%%\n", counts.accuracy());
  std::printf("accuracy after feedback:  %.1f%% (none: %.1f%%)\n",
              after.accuracy(), after.none_rate());
  return 0;
}
