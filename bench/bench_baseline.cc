// Experiment D1 (paper Section VI-D): comparison with the DBG-PT-style
// baseline — same plan-reading ability, no RAG grounding. The paper
// identifies four failure categories; this bench counts each over the
// 200-query test set for both approaches.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace htapex;
using namespace htapex::bench;

struct FailureCounts {
  GradeCounts grades;
  int wrong_winner = 0;        // predicted the slower engine as faster
  int fundamental_index = 0;   // claimed index benefits under a function
  int overemphasis = 0;        // led with columnar storage over the true cause
  int cost_leak = 0;           // compared non-comparable cost estimates
  int missed_offset = 0;       // ignored a decisive LIMIT/OFFSET magnitude
};

bool HasFactor(const std::vector<PerfFactor>& fs, PerfFactor f) {
  return std::find(fs.begin(), fs.end(), f) != fs.end();
}

void Tally(const ExplainResult& r, FailureCounts* counts) {
  counts->grades.Add(r.grade.grade);
  const ExplanationClaims& claims = r.generation.claims;
  if (claims.is_none) return;
  if (claims.claimed_faster != r.outcome.faster) ++counts->wrong_winner;
  if (claims.compared_costs) ++counts->cost_leak;
  // Fundamental index error: the query wraps a column in a function, yet
  // the explanation cites index benefits the plans do not show.
  bool truth_has_lookup =
      r.truth.primary == PerfFactor::kIndexPointLookup ||
      HasFactor(r.truth.secondary, PerfFactor::kIndexPointLookup);
  if (HasFactor(claims.factors, PerfFactor::kIndexPointLookup) &&
      !truth_has_lookup) {
    ++counts->fundamental_index;
  }
  // Overemphasis: columnar storage is claimed first while the true primary
  // factor is something else entirely.
  if (!claims.factors.empty() &&
      claims.factors.front() == PerfFactor::kColumnarScanWidth &&
      r.truth.primary != PerfFactor::kColumnarScanWidth) {
    ++counts->overemphasis;
  }
  // Relative values: the true root cause is the OFFSET magnitude but the
  // explanation never mentions it.
  if (r.truth.primary == PerfFactor::kLargeOffsetScan &&
      !HasFactor(claims.factors, PerfFactor::kLargeOffsetScan)) {
    ++counts->missed_offset;
  }
}

}  // namespace

int main() {
  auto rag_fixture = Fixture::Make();
  if (rag_fixture == nullptr) return 1;
  ExplainerConfig baseline_config;
  baseline_config.use_rag = false;
  HtapExplainer baseline(rag_fixture->system.get(), baseline_config);

  auto workload = TestWorkload(*rag_fixture->system);
  FailureCounts ours, dbgpt;
  for (const GeneratedQuery& gq : workload) {
    auto r1 = rag_fixture->explainer->Explain(gq.sql);
    auto r2 = baseline.Explain(gq.sql);
    if (!r1.ok() || !r2.ok()) return 1;
    Tally(*r1, &ours);
    Tally(*r2, &dbgpt);
  }

  std::printf("=== D1: ours (RAG) vs DBG-PT baseline, %zu queries ===\n",
              workload.size());
  std::printf("%-42s %-10s %s\n", "metric", "ours", "DBG-PT");
  std::printf("%-42s %-10.1f %.1f\n", "accurate (%)", ours.grades.accuracy(),
              dbgpt.grades.accuracy());
  std::printf("%-42s %-10d %d\n", "wrong winner", ours.wrong_winner,
              dbgpt.wrong_winner);
  std::printf("%-42s %-10d %d\n", "1. fundamental index errors",
              ours.fundamental_index, dbgpt.fundamental_index);
  std::printf("%-42s %-10d %d\n", "2. overemphasis on columnar storage",
              ours.overemphasis, dbgpt.overemphasis);
  std::printf("%-42s %-10d %d\n", "3. cost-comparison leaks", ours.cost_leak,
              dbgpt.cost_leak);
  std::printf("%-42s %-10d %d\n", "4. missed LIMIT/OFFSET context",
              ours.missed_offset, dbgpt.missed_offset);
  std::printf("\npaper: DBG-PT reads plans well but exhibits all four "
              "failure modes; the RAG approach avoids them.\n");

  bool shape_ok = ours.grades.accuracy() > dbgpt.grades.accuracy() &&
                  ours.cost_leak == 0 &&
                  dbgpt.fundamental_index + dbgpt.overemphasis +
                          dbgpt.cost_leak + dbgpt.missed_offset >
                      ours.fundamental_index + ours.overemphasis +
                          ours.cost_leak + ours.missed_offset;
  std::printf("shape (ours more accurate, no cost leaks, fewer failures per "
              "category): %s\n", shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
