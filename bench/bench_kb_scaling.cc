// Experiment L2 (paper Section VI-B): knowledge-base growth. "As the
// knowledge base grows, the search time will inevitably increase, but we do
// not expect this component to dominate, given recent advances in vector
// indexing [HNSW]." This bench measures exact (brute-force) vs HNSW search
// as the KB grows from the paper's 20 entries to 20k, plus HNSW recall.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "vectordb/hnsw.h"
#include "vectordb/vector_store.h"

namespace {

using namespace htapex;

constexpr int kDim = 16;

std::vector<double> RandomEmbedding(Rng* rng) {
  std::vector<double> v(kDim);
  for (double& x : v) x = rng->UniformReal(0.0, 8.0);
  return v;
}

void BM_ExactSearch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(17);
  VectorStore store(kDim);
  for (int i = 0; i < n; ++i) {
    store.Add(RandomEmbedding(&rng)).status();
  }
  std::vector<double> query = RandomEmbedding(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Search(query, 2));
  }
  state.SetLabel("exact");
}
BENCHMARK(BM_ExactSearch)
    ->Arg(20)
    ->Arg(200)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMicrosecond);

void BM_HnswSearch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(17);
  HnswIndex index(kDim);
  for (int i = 0; i < n; ++i) {
    index.Add(RandomEmbedding(&rng)).status();
  }
  std::vector<double> query = RandomEmbedding(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(query, 2));
  }
  state.SetLabel("hnsw");
}
BENCHMARK(BM_HnswSearch)
    ->Arg(20)
    ->Arg(200)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // HNSW recall@2 against exact search, 10k vectors, 200 queries.
  Rng rng(23);
  VectorStore exact(kDim);
  HnswIndex hnsw(kDim);
  for (int i = 0; i < 5'000; ++i) {
    std::vector<double> v = RandomEmbedding(&rng);
    exact.Add(v).status();
    hnsw.Add(std::move(v)).status();
  }
  int hits = 0, total = 0;
  for (int q = 0; q < 200; ++q) {
    std::vector<double> query = RandomEmbedding(&rng);
    auto truth = exact.Search(query, 2);
    auto approx = hnsw.Search(query, 2);
    std::set<int> truth_ids;
    for (const auto& h : truth) truth_ids.insert(h.id);
    for (const auto& h : approx) {
      if (truth_ids.count(h.id) > 0) ++hits;
    }
    total += 2;
  }
  std::printf("\n=== L2: HNSW recall@2 on 5k vectors: %.1f%% ===\n",
              100.0 * hits / total);
  std::printf("shape check: exact search grows linearly with KB size; HNSW "
              "stays near-flat, so KB search never dominates the ~12 s "
              "LLM-bound response time.\n");
  return 0;
}
