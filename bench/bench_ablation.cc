// Extension experiment M2: design-choice ablations called out in DESIGN.md.
//
//  (a) AP parallelism / startup sweep — how the engine crossover (which
//      queries TP wins) shifts with cluster resources. The paper's setup is
//      4 data servers; more parallelism widens AP's win region, higher
//      dispatch overhead narrows it.
//  (b) Foreign-key index ablation — dropping TP's FK indexes degrades its
//      join plans from index nested loops to plain nested loops, the exact
//      plan shape the paper's Table II expert commentary describes ("nested
//      loop join with no index available").
#include <cstdio>

#include "engine/htap_system.h"
#include "workload/query_generator.h"
#include "common/string_util.h"

namespace {

using namespace htapex;

constexpr const char* kExample1 =
    "SELECT COUNT(*) FROM customer, nation, orders "
    "WHERE SUBSTRING(c_phone, 1, 2) IN ('20','40','22','30','39','42','21') "
    "AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
    "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
    "AND n_nationkey = c_nationkey";

double TpWinRate(const HtapSystem& system, int n_queries) {
  QueryGenerator gen(system.config().stats_scale_factor, 4321);
  int tp = 0, total = 0;
  for (const GeneratedQuery& gq : gen.GenerateMix(n_queries)) {
    auto bound = system.Bind(gq.sql);
    if (!bound.ok()) continue;
    auto plans = system.PlanBoth(*bound);
    if (!plans.ok()) continue;
    ++total;
    if (system.LatencyMs(plans->tp) <= system.LatencyMs(plans->ap)) ++tp;
  }
  return total == 0 ? 0.0 : 100.0 * tp / total;
}

}  // namespace

int main() {
  std::printf("=== M2a: AP resource sweep (200-query mix) ===\n");
  std::printf("%-14s %-14s %-12s %-14s\n", "parallelism", "startup (ms)",
              "TP win rate", "Example1 AP");
  for (double par : {1.0, 4.0, 8.0, 32.0}) {
    for (double startup : {5.0, 40.0, 200.0}) {
      HtapSystem system;
      HtapConfig config;
      config.data_scale_factor = 0.0;
      config.latency.ap_parallelism = par;
      config.latency.ap_startup_ms = startup;
      if (!system.Init(config).ok()) return 1;
      auto bound = system.Bind(kExample1);
      auto plans = system.PlanBoth(*bound);
      if (!plans.ok()) return 1;
      std::printf("%-14.0f %-14.0f %9.1f%%   %-14s\n", par, startup,
                  TpWinRate(system, 200),
                  FormatMillis(system.LatencyMs(plans->ap)).c_str());
    }
  }
  std::printf(
      "shape: the engine frontier is robust — resources change the "
      "*magnitude* of AP's win (Example 1: 2.6s -> 85ms across the sweep), "
      "while only borderline small joins flip sides (higher dispatch "
      "overhead nudges a few % of queries to TP). TP's win region (index "
      "point lookups, streamed top-N) survives even 32x parallelism.\n\n");

  std::printf("=== M2b: foreign-key index ablation (Example 1) ===\n");
  {
    HtapSystem with_fk;
    HtapConfig config;
    config.data_scale_factor = 0.0;
    if (!with_fk.Init(config).ok()) return 1;

    HtapSystem without_fk;
    if (!without_fk.Init(config).ok()) return 1;
    // Collect names first: DropIndex mutates the index map.
    std::vector<std::string> to_drop;
    for (const IndexDef* idx : without_fk.catalog().AllIndexes()) {
      if (!idx->is_primary) to_drop.push_back(idx->name);
    }
    for (const std::string& name : to_drop) {
      if (!without_fk.DropIndex(name).ok()) return 1;
    }

    struct Case {
      const char* label;
      HtapSystem* system;
    };
    const Case cases[] = {{"with FK indexes", &with_fk},
                          {"without FK indexes", &without_fk}};
    for (const auto& [label, system] : cases) {
      auto bound = system->Bind(kExample1);
      if (!bound.ok()) return 1;
      auto plans = system->PlanBoth(*bound);
      if (!plans.ok()) return 1;
      std::string text = plans->tp.Explain();
      bool plain_nlj =
          text.find("'Node Type': 'Nested loop inner join'") != std::string::npos;
      bool index_nlj =
          text.find("'Node Type': 'Index nested loop join'") != std::string::npos;
      std::printf("%-22s TP=%-12s joins: %s\n", label,
                  FormatMillis(system->LatencyMs(plans->tp)).c_str(),
                  plain_nlj && !index_nlj ? "plain nested loop (Table II shape)"
                  : index_nlj             ? "index nested loop"
                                          : "other");
    }
    std::printf("shape: without FK indexes TP degrades to plain nested "
                "loops and its latency explodes — AP's hash joins become "
                "the only viable plan, the paper's qualitative story.\n");
  }

  std::printf("\n=== M2c: counterfactual — what if TP had a hash join? ===\n");
  {
    HtapSystem normal, hashy;
    HtapConfig config;
    config.data_scale_factor = 0.0;
    if (!normal.Init(config).ok()) return 1;
    HtapConfig hash_config = config;
    hash_config.tp_cost.force_hash_join = true;
    if (!hashy.Init(hash_config).ok()) return 1;

    auto b1 = normal.Bind(kExample1);
    auto p1 = normal.PlanBoth(*b1);
    auto b2 = hashy.Bind(kExample1);
    auto p2 = hashy.PlanBoth(*b2);
    if (!p1.ok() || !p2.ok()) return 1;
    double tp_nlj = normal.LatencyMs(p1->tp);
    double tp_hash = hashy.LatencyMs(p2->tp);
    double ap = normal.LatencyMs(p1->ap);
    std::printf("TP with (index) nested loops:  %s\n",
                FormatMillis(tp_nlj).c_str());
    std::printf("TP with hash joins:            %s\n",
                FormatMillis(tp_hash).c_str());
    std::printf("AP (hash joins + columnar):    %s\n",
                FormatMillis(ap).c_str());
    std::printf(
        "decomposition: giving TP a hash join does NOT close the gap — its "
        "row-store scans (orders: 150M full rows) dominate. AP's win is "
        "hash join *plus* columnar scan speed, matching the explanation "
        "our expert and RAG model give.\n");
  }
  return 0;
}
