#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "storage/analyze.h"
#include "storage/datagen.h"

namespace htapex {
namespace {

TEST(AnalyzeTest, MeasuresSimpleTable) {
  TableSchema schema("t",
                     {{"a", DataType::kInt}, {"s", DataType::kString}}, {"a"});
  TableData data;
  data.table_name = "t";
  data.rows = {{Value::Int(1), Value::Str("xx")},
               {Value::Int(2), Value::Str("yyyy")},
               {Value::Int(2), Value::Null()},
               {Value::Int(3), Value::Str("zz")}};
  auto stats = ComputeTableStats(schema, data);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->row_count, 4);
  EXPECT_EQ(stats->columns[0].ndv, 3);
  EXPECT_EQ(stats->columns[0].min.AsInt(), 1);
  EXPECT_EQ(stats->columns[0].max.AsInt(), 3);
  EXPECT_DOUBLE_EQ(stats->columns[0].null_fraction, 0.0);
  EXPECT_EQ(stats->columns[1].ndv, 3);
  EXPECT_DOUBLE_EQ(stats->columns[1].null_fraction, 0.25);
  EXPECT_NEAR(stats->columns[1].avg_width, (2 + 4 + 2) / 3.0, 1e-9);
}

/// The core validation: the analytic statistics model in catalog/tpch.cc
/// must agree with measured statistics of actually generated data at the
/// same scale factor — the latency simulation and both optimizers rest on
/// that model.
class ModelValidationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelValidationTest, AnalyticStatsMatchMeasuredData) {
  const double kSf = 0.05;
  Catalog catalog;
  ASSERT_TRUE(tpch::BuildCatalog(&catalog, kSf).ok());
  TpchDataGenerator gen(kSf);
  const std::string table = GetParam();

  auto schema = catalog.GetTable(table);
  auto analytic = catalog.GetStats(table);
  ASSERT_TRUE(schema.ok() && analytic.ok());
  auto data = gen.Generate(table);
  ASSERT_TRUE(data.ok());
  auto measured = ComputeTableStats(**schema, *data);
  ASSERT_TRUE(measured.ok());

  // Row counts: exact for fixed tables; within 5x for lineitem (its row
  // count is stochastic, 1-7 lines per order around the TPC-H mean).
  double row_ratio = static_cast<double>(measured->row_count) /
                     static_cast<double>((*analytic)->row_count);
  EXPECT_GT(row_ratio, 0.5) << table;
  EXPECT_LT(row_ratio, 2.0) << table;

  for (size_t c = 0; c < (*schema)->num_columns(); ++c) {
    const ColumnStats& a = (*analytic)->columns[c];
    const ColumnStats& m = measured->columns[c];
    const std::string& col = (*schema)->column(c).name;
    // NDV within an order of magnitude (analytic NDVs are model values;
    // uniqueness/cardinality classes must match, exact counts need not).
    double ndv_ratio =
        static_cast<double>(std::max(a.ndv, m.ndv)) /
        static_cast<double>(std::max<int64_t>(std::min(a.ndv, m.ndv), 1));
    EXPECT_LT(ndv_ratio, 12.0) << table << "." << col;
    // Numeric ranges: measured values must lie within the modelled domain
    // (the model's min/max bound the generator's).
    if (!a.min.is_null() && !m.min.is_null() && !m.min.is_string()) {
      EXPECT_GE(m.min.AsDouble(), a.min.AsDouble() - 1e-6)
          << table << "." << col;
      EXPECT_LE(m.max.AsDouble(), a.max.AsDouble() + 1e-6)
          << table << "." << col;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TpchTables, ModelValidationTest,
                         ::testing::Values("region", "nation", "supplier",
                                           "customer", "part", "orders"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace htapex
