#include <gtest/gtest.h>

#include "ap/ap_optimizer.h"
#include "engine/htap_system.h"
#include "plan/cardinality.h"
#include "sql/binder.h"

namespace htapex {
namespace {

/// Unit tests pinning the two optimizers' structural decisions.
class OptimizerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  PlanPair Plans(const std::string& sql) {
    auto query = system_->Bind(sql);
    EXPECT_TRUE(query.ok()) << sql << ": " << query.status();
    auto plans = system_->PlanBoth(*query);
    EXPECT_TRUE(plans.ok()) << sql;
    return std::move(*plans);
  }

  static const PlanNode* Find(const PlanNode& node, PlanOp op) {
    if (node.op == op) return &node;
    for (const auto& c : node.children) {
      const PlanNode* f = Find(*c, op);
      if (f != nullptr) return f;
    }
    return nullptr;
  }

  static HtapSystem* system_;
};

HtapSystem* OptimizerTest::system_ = nullptr;

TEST_F(OptimizerTest, TpPrefersMostSelectiveIndex) {
  // Both o_orderkey (PK, NDV=600M) and o_custkey (FK, NDV=10M) have
  // indexes; the PK equality is far more selective and must win.
  PlanPair plans = Plans(
      "SELECT o_totalprice FROM orders WHERE o_orderkey = 77 "
      "AND o_custkey = 12345");
  const PlanNode* scan = Find(*plans.tp.root, PlanOp::kIndexScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->index_name, "pk_orders");
  // The other predicate becomes a residual filter.
  const PlanNode* filter = Find(*plans.tp.root, PlanOp::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_NE(filter->predicates[0]->ToString().find("o_custkey"),
            std::string::npos);
}

TEST_F(OptimizerTest, TpSkipsIndexForUnselectivePredicate) {
  // o_orderstatus has NDV 3 (selectivity 1/3 > 0.15): a full scan beats
  // fetching a third of the table through the index.
  PlanPair plans =
      Plans("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'");
  EXPECT_EQ(Find(*plans.tp.root, PlanOp::kIndexScan), nullptr);
  EXPECT_NE(Find(*plans.tp.root, PlanOp::kTableScan), nullptr);
}

TEST_F(OptimizerTest, TpJoinOrderStartsFromSmallestFilteredTable) {
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM customer, nation WHERE n_nationkey = c_nationkey "
      "AND n_name = 'egypt'");
  // Left-deep: the outer (first) leaf under the join chain is nation.
  const PlanNode* join = Find(*plans.tp.root, PlanOp::kIndexNestedLoopJoin);
  ASSERT_NE(join, nullptr);
  const PlanNode* outer = join->children[0].get();
  while (!outer->children.empty()) outer = outer->children[0].get();
  EXPECT_EQ(outer->relation, "nation");
}

TEST_F(OptimizerTest, TpNeverUsesHashOperators) {
  for (const char* sql :
       {"SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
        "SELECT o_orderkey FROM orders ORDER BY o_totalprice, o_orderkey "
        "LIMIT 5"}) {
    PlanPair plans = Plans(sql);
    EXPECT_EQ(Find(*plans.tp.root, PlanOp::kHashJoin), nullptr) << sql;
    EXPECT_EQ(Find(*plans.tp.root, PlanOp::kHashAggregate), nullptr) << sql;
    EXPECT_EQ(Find(*plans.tp.root, PlanOp::kColumnScan), nullptr) << sql;
    EXPECT_EQ(Find(*plans.tp.root, PlanOp::kTopN), nullptr) << sql;
  }
}

TEST_F(OptimizerTest, ApNeverUsesRowStoreOperators) {
  for (const char* sql :
       {"SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        "SELECT c_name FROM customer WHERE c_custkey = 42",
        "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5"}) {
    PlanPair plans = Plans(sql);
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kIndexScan), nullptr) << sql;
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kTableScan), nullptr) << sql;
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kNestedLoopJoin), nullptr) << sql;
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kIndexNestedLoopJoin), nullptr)
        << sql;
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kGroupAggregate), nullptr) << sql;
  }
}

TEST_F(OptimizerTest, ApProbeSideIsTheLargerInput) {
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM customer, nation WHERE n_nationkey = c_nationkey");
  const PlanNode* join = Find(*plans.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(join, nullptr);
  // probe = children[0] (customer, 15M), build = children[1] (nation, 25).
  const PlanNode* probe = join->children[0].get();
  const PlanNode* build = join->children[1].get();
  EXPECT_EQ(probe->relation, "customer");
  EXPECT_EQ(build->relation, "nation");
  EXPECT_GT(probe->estimated_rows, build->estimated_rows);
}

TEST_F(OptimizerTest, ApScanReadsOnlyReferencedColumns) {
  PlanPair plans = Plans(
      "SELECT c_name FROM customer WHERE c_mktsegment = 'machinery'");
  const PlanNode* scan = Find(*plans.ap.root, PlanOp::kColumnScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->columns_read.size(), 2u);  // c_name + c_mktsegment
}

TEST_F(OptimizerTest, ResidualJoinPredicateLandsOnJoin) {
  // Second equi-join between the same pair becomes a join-level filter.
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_orderkey = c_custkey");
  const PlanNode* tp_join = Find(*plans.tp.root, PlanOp::kIndexNestedLoopJoin);
  if (tp_join == nullptr) tp_join = Find(*plans.tp.root, PlanOp::kNestedLoopJoin);
  ASSERT_NE(tp_join, nullptr);
  EXPECT_FALSE(tp_join->predicates.empty());
  const PlanNode* ap_join = Find(*plans.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(ap_join, nullptr);
  EXPECT_FALSE(ap_join->predicates.empty());
}

TEST_F(OptimizerTest, DisconnectedTablesCrossJoin) {
  PlanPair plans = Plans("SELECT COUNT(*) FROM nation, region");
  // No join predicate: both engines still produce a (cross) join plan.
  bool tp_has_join =
      Find(*plans.tp.root, PlanOp::kNestedLoopJoin) != nullptr ||
      Find(*plans.tp.root, PlanOp::kIndexNestedLoopJoin) != nullptr;
  EXPECT_TRUE(tp_has_join);
  const PlanNode* ap_join = Find(*plans.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(ap_join, nullptr);
  EXPECT_EQ(ap_join->left_key, nullptr);
  EXPECT_NEAR(ap_join->estimated_rows, 125.0, 1.0);  // 25 x 5
}

TEST_F(OptimizerTest, CostsGrowWithInputSize) {
  PlanPair small = Plans("SELECT COUNT(*) FROM nation");
  PlanPair large = Plans("SELECT COUNT(*) FROM orders");
  EXPECT_LT(small.tp.root->total_cost, large.tp.root->total_cost);
  EXPECT_LT(small.ap.root->total_cost, large.ap.root->total_cost);
}

// Regression: with two equi conjuncts between the same table pair, the
// hash key must be the conjunct with the highest combined NDV (the most
// selective one), not whichever was written first. Here the first-written
// conjunct keys on o_custkey/c_custkey (NDV 15M) and the second on
// o_orderkey/c_custkey (NDV 150M); the second must win.
TEST_F(OptimizerTest, ApHashKeyPicksMostSelectiveConjunct) {
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_orderkey = c_custkey");
  const PlanNode* join = Find(*plans.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(join, nullptr);
  ASSERT_NE(join->left_key, nullptr);
  std::string keys =
      join->left_key->ToString() + " " + join->right_key->ToString();
  EXPECT_NE(keys.find("o_orderkey"), std::string::npos) << keys;
  // The weaker equi conjunct survives as a join-level predicate.
  EXPECT_FALSE(join->predicates.empty());
  // Regression: that extra conjunct's selectivity (1/15M) must land in the
  // join's estimate, collapsing it to ~1 row instead of ~15M.
  EXPECT_LT(join->estimated_rows, 100.0);
}

// Regression: residual (non-equi, multi-table) predicates attached to the
// join must scale its output estimate by the default selectivity.
TEST_F(OptimizerTest, ApJoinEstimateAppliesResidualSelectivity) {
  PlanPair base = Plans(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey");
  PlanPair filtered = Plans(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_totalprice > c_acctbal");
  const PlanNode* base_join = Find(*base.ap.root, PlanOp::kHashJoin);
  const PlanNode* filt_join = Find(*filtered.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(base_join, nullptr);
  ASSERT_NE(filt_join, nullptr);
  EXPECT_FALSE(filt_join->predicates.empty());
  EXPECT_NEAR(filt_join->estimated_rows,
              base_join->estimated_rows * CardinalityEstimator::kDefaultSelectivity,
              base_join->estimated_rows * 0.01);
}

// The DP enumerator's modeled cost can never exceed greedy's: greedy's
// tree is inside DP's search space and subset cardinalities are
// order-invariant.
TEST_F(OptimizerTest, ApDpNeverCostlierThanGreedy) {
  ApCostParams dp_params;
  dp_params.sift.enabled = false;
  ApCostParams greedy_params = dp_params;
  greedy_params.enable_dp = false;
  ApOptimizer dp_opt(system_->catalog(), dp_params);
  ApOptimizer greedy_opt(system_->catalog(), greedy_params);
  for (const char* sql :
       {"SELECT COUNT(*) FROM lineitem, orders, part, supplier WHERE "
        "l_orderkey = o_orderkey AND l_partkey = p_partkey AND "
        "l_suppkey = s_suppkey AND p_size = 10 AND s_acctbal > 8000",
        "SELECT COUNT(*) FROM region, nation, customer, orders WHERE "
        "r_regionkey = n_regionkey AND n_nationkey = c_nationkey AND "
        "c_custkey = o_custkey AND r_name = 'asia'",
        "SELECT COUNT(*) FROM customer, nation, orders WHERE o_custkey = "
        "c_custkey AND n_nationkey = c_nationkey AND n_name = 'egypt'"}) {
    auto query = system_->Bind(sql);
    ASSERT_TRUE(query.ok()) << sql;
    auto dp_plan = dp_opt.Plan(*query);
    auto greedy_plan = greedy_opt.Plan(*query);
    ASSERT_TRUE(dp_plan.ok() && greedy_plan.ok()) << sql;
    EXPECT_LE(dp_plan->root->total_cost,
              greedy_plan->root->total_cost * (1.0 + 1e-9))
        << sql;
  }
}

// Golden plan shape: on a selective chain the DP enumerator assembles the
// two tiny dimension tables into a build subtree (a bushy join) instead of
// greedy's left-deep order, and the probe spine bottoms out in the large
// fact scan — which predicate transfer then turns into a sifted scan.
TEST_F(OptimizerTest, ApDpBuildsBushyPlanForSelectiveChain) {
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM region, nation, customer WHERE r_regionkey = "
      "n_regionkey AND n_nationkey = c_nationkey AND r_name = 'asia'");
  const PlanNode* top = Find(*plans.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(top, nullptr);
  // Build side contains its own hash join over nation and region.
  const PlanNode* build_join = Find(*top->children[1], PlanOp::kHashJoin);
  ASSERT_NE(build_join, nullptr);
  // Probe spine bottoms out in the (sifted) customer scan.
  const PlanNode* bottom = top->children[0].get();
  while (!bottom->children.empty()) bottom = bottom->children[0].get();
  EXPECT_EQ(bottom->relation, "customer");
  EXPECT_EQ(bottom->op, PlanOp::kSiftedScan);
}

// Sift plan shape: a selective dimension join transfers a Bloom filter
// onto the probe scan, records its expected FP rate and selectivity, and
// scales the scan's output estimate down.
TEST_F(OptimizerTest, ApSiftedScanShapeAndScaling) {
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM customer, nation WHERE n_nationkey = c_nationkey "
      "AND n_name = 'egypt'");
  const PlanNode* scan = Find(*plans.ap.root, PlanOp::kSiftedScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_EQ(scan->sift_probes.size(), 1u);
  const SiftProbe& probe = scan->sift_probes[0];
  EXPECT_GE(probe.sift_id, 0);
  EXPECT_GT(probe.expected_fp_rate, 0.0);
  EXPECT_LT(probe.expected_fp_rate, 0.05);
  EXPECT_LE(probe.expected_selectivity, 0.5);
  const PlanNode* join = Find(*plans.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->sift_id, probe.sift_id);
  // The scan's estimate shrinks to the modeled pass-through fraction.
  EXPECT_LT(scan->estimated_rows, 0.5 * scan->base_rows);
  // The sift surfaces in the EXPLAIN output.
  std::string json = plans.ap.Explain();
  EXPECT_NE(json.find("Sifted columnar scan"), std::string::npos);
  EXPECT_NE(json.find("Sift Id"), std::string::npos);
}

// No sift when the build side is too large to be worth a filter.
TEST_F(OptimizerTest, ApNoSiftForLargeBuildSide) {
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey");
  EXPECT_EQ(Find(*plans.ap.root, PlanOp::kSiftedScan), nullptr);
}

// Above the DP table threshold the optimizer falls back to greedy and
// still produces a valid (left-deep) plan.
TEST_F(OptimizerTest, ApGreedyFallbackAboveDpThreshold) {
  ApCostParams params;
  params.dp_table_threshold = 2;  // forces greedy for 3+ tables
  ApOptimizer opt(system_->catalog(), params);
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM customer, nation, orders WHERE o_custkey = "
      "c_custkey AND n_nationkey = c_nationkey AND n_name = 'egypt'");
  ASSERT_TRUE(query.ok());
  auto plan = opt.Plan(*query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Greedy is left-deep: no hash join on any build side.
  const PlanNode* join = Find(*plan->root, PlanOp::kHashJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(Find(*join->children[1], PlanOp::kHashJoin), nullptr);
}

// The no-stats NDV fallback is one shared constant: an equality predicate
// on a statistics-less column and a join on that same column must both
// assume kNoStatsNdv distinct values (historically the join assumed 1.0,
// claiming zero reduction).
TEST(CardinalityFallbackTest, NoStatsNdvUnified) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable(TableSchema(
                      "t", {{"a", DataType::kInt}, {"b", DataType::kInt}},
                      {"a"}))
                  .ok());
  auto query = ParseAndBind(catalog, "SELECT COUNT(*) FROM t WHERE a = 5");
  ASSERT_TRUE(query.ok()) << query.status();
  CardinalityEstimator est(catalog);
  ASSERT_EQ(query->conjuncts.size(), 1u);
  EXPECT_NEAR(est.ConjunctSelectivity(*query, query->conjuncts[0]),
              1.0 / CardinalityEstimator::kNoStatsNdv, 1e-12);
  const Expr* col = query->conjuncts[0].sarg_column;
  ASSERT_NE(col, nullptr);
  EXPECT_NEAR(est.ColumnNdv(*query, *col), CardinalityEstimator::kNoStatsNdv,
              1e-12);
  // JoinOutputRows on the same column now divides by the same guess.
  ASSERT_TRUE(catalog
                  .AddTable(TableSchema(
                      "u", {{"x", DataType::kInt}, {"y", DataType::kInt}},
                      {"x"}))
                  .ok());
  auto join_query =
      ParseAndBind(catalog, "SELECT COUNT(*) FROM t, u WHERE a = x");
  ASSERT_TRUE(join_query.ok()) << join_query.status();
  ASSERT_EQ(join_query->conjuncts.size(), 1u);
  EXPECT_NEAR(est.JoinOutputRows(*join_query, join_query->conjuncts[0], 1000.0,
                                 1000.0),
              1000.0 * 1000.0 / CardinalityEstimator::kNoStatsNdv, 1e-6);
}

}  // namespace
}  // namespace htapex
