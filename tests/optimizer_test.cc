#include <gtest/gtest.h>

#include "engine/htap_system.h"

namespace htapex {
namespace {

/// Unit tests pinning the two optimizers' structural decisions.
class OptimizerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  PlanPair Plans(const std::string& sql) {
    auto query = system_->Bind(sql);
    EXPECT_TRUE(query.ok()) << sql << ": " << query.status();
    auto plans = system_->PlanBoth(*query);
    EXPECT_TRUE(plans.ok()) << sql;
    return std::move(*plans);
  }

  static const PlanNode* Find(const PlanNode& node, PlanOp op) {
    if (node.op == op) return &node;
    for (const auto& c : node.children) {
      const PlanNode* f = Find(*c, op);
      if (f != nullptr) return f;
    }
    return nullptr;
  }

  static HtapSystem* system_;
};

HtapSystem* OptimizerTest::system_ = nullptr;

TEST_F(OptimizerTest, TpPrefersMostSelectiveIndex) {
  // Both o_orderkey (PK, NDV=600M) and o_custkey (FK, NDV=10M) have
  // indexes; the PK equality is far more selective and must win.
  PlanPair plans = Plans(
      "SELECT o_totalprice FROM orders WHERE o_orderkey = 77 "
      "AND o_custkey = 12345");
  const PlanNode* scan = Find(*plans.tp.root, PlanOp::kIndexScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->index_name, "pk_orders");
  // The other predicate becomes a residual filter.
  const PlanNode* filter = Find(*plans.tp.root, PlanOp::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_NE(filter->predicates[0]->ToString().find("o_custkey"),
            std::string::npos);
}

TEST_F(OptimizerTest, TpSkipsIndexForUnselectivePredicate) {
  // o_orderstatus has NDV 3 (selectivity 1/3 > 0.15): a full scan beats
  // fetching a third of the table through the index.
  PlanPair plans =
      Plans("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'");
  EXPECT_EQ(Find(*plans.tp.root, PlanOp::kIndexScan), nullptr);
  EXPECT_NE(Find(*plans.tp.root, PlanOp::kTableScan), nullptr);
}

TEST_F(OptimizerTest, TpJoinOrderStartsFromSmallestFilteredTable) {
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM customer, nation WHERE n_nationkey = c_nationkey "
      "AND n_name = 'egypt'");
  // Left-deep: the outer (first) leaf under the join chain is nation.
  const PlanNode* join = Find(*plans.tp.root, PlanOp::kIndexNestedLoopJoin);
  ASSERT_NE(join, nullptr);
  const PlanNode* outer = join->children[0].get();
  while (!outer->children.empty()) outer = outer->children[0].get();
  EXPECT_EQ(outer->relation, "nation");
}

TEST_F(OptimizerTest, TpNeverUsesHashOperators) {
  for (const char* sql :
       {"SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
        "SELECT o_orderkey FROM orders ORDER BY o_totalprice, o_orderkey "
        "LIMIT 5"}) {
    PlanPair plans = Plans(sql);
    EXPECT_EQ(Find(*plans.tp.root, PlanOp::kHashJoin), nullptr) << sql;
    EXPECT_EQ(Find(*plans.tp.root, PlanOp::kHashAggregate), nullptr) << sql;
    EXPECT_EQ(Find(*plans.tp.root, PlanOp::kColumnScan), nullptr) << sql;
    EXPECT_EQ(Find(*plans.tp.root, PlanOp::kTopN), nullptr) << sql;
  }
}

TEST_F(OptimizerTest, ApNeverUsesRowStoreOperators) {
  for (const char* sql :
       {"SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        "SELECT c_name FROM customer WHERE c_custkey = 42",
        "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5"}) {
    PlanPair plans = Plans(sql);
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kIndexScan), nullptr) << sql;
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kTableScan), nullptr) << sql;
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kNestedLoopJoin), nullptr) << sql;
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kIndexNestedLoopJoin), nullptr)
        << sql;
    EXPECT_EQ(Find(*plans.ap.root, PlanOp::kGroupAggregate), nullptr) << sql;
  }
}

TEST_F(OptimizerTest, ApProbeSideIsTheLargerInput) {
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM customer, nation WHERE n_nationkey = c_nationkey");
  const PlanNode* join = Find(*plans.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(join, nullptr);
  // probe = children[0] (customer, 15M), build = children[1] (nation, 25).
  const PlanNode* probe = join->children[0].get();
  const PlanNode* build = join->children[1].get();
  EXPECT_EQ(probe->relation, "customer");
  EXPECT_EQ(build->relation, "nation");
  EXPECT_GT(probe->estimated_rows, build->estimated_rows);
}

TEST_F(OptimizerTest, ApScanReadsOnlyReferencedColumns) {
  PlanPair plans = Plans(
      "SELECT c_name FROM customer WHERE c_mktsegment = 'machinery'");
  const PlanNode* scan = Find(*plans.ap.root, PlanOp::kColumnScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->columns_read.size(), 2u);  // c_name + c_mktsegment
}

TEST_F(OptimizerTest, ResidualJoinPredicateLandsOnJoin) {
  // Second equi-join between the same pair becomes a join-level filter.
  PlanPair plans = Plans(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_orderkey = c_custkey");
  const PlanNode* tp_join = Find(*plans.tp.root, PlanOp::kIndexNestedLoopJoin);
  if (tp_join == nullptr) tp_join = Find(*plans.tp.root, PlanOp::kNestedLoopJoin);
  ASSERT_NE(tp_join, nullptr);
  EXPECT_FALSE(tp_join->predicates.empty());
  const PlanNode* ap_join = Find(*plans.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(ap_join, nullptr);
  EXPECT_FALSE(ap_join->predicates.empty());
}

TEST_F(OptimizerTest, DisconnectedTablesCrossJoin) {
  PlanPair plans = Plans("SELECT COUNT(*) FROM nation, region");
  // No join predicate: both engines still produce a (cross) join plan.
  bool tp_has_join =
      Find(*plans.tp.root, PlanOp::kNestedLoopJoin) != nullptr ||
      Find(*plans.tp.root, PlanOp::kIndexNestedLoopJoin) != nullptr;
  EXPECT_TRUE(tp_has_join);
  const PlanNode* ap_join = Find(*plans.ap.root, PlanOp::kHashJoin);
  ASSERT_NE(ap_join, nullptr);
  EXPECT_EQ(ap_join->left_key, nullptr);
  EXPECT_NEAR(ap_join->estimated_rows, 125.0, 1.0);  // 25 x 5
}

TEST_F(OptimizerTest, CostsGrowWithInputSize) {
  PlanPair small = Plans("SELECT COUNT(*) FROM nation");
  PlanPair large = Plans("SELECT COUNT(*) FROM orders");
  EXPECT_LT(small.tp.root->total_cost, large.tp.root->total_cost);
  EXPECT_LT(small.ap.root->total_cost, large.ap.root->total_cost);
}

}  // namespace
}  // namespace htapex
