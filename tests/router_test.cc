#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "engine/htap_system.h"
#include "router/smart_router.h"
#include "workload/query_generator.h"

namespace htapex {
namespace {

TEST(FeaturizerTest, Example1Shapes) {
  HtapSystem system;
  HtapConfig config;
  config.data_scale_factor = 0.0;  // plan-only
  ASSERT_TRUE(system.Init(config).ok());
  auto query = system.Bind(
      "SELECT COUNT(*) FROM customer, nation, orders WHERE o_custkey = "
      "c_custkey AND n_nationkey = c_nationkey AND n_name = 'egypt'");
  ASSERT_TRUE(query.ok());
  auto plans = system.PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  PlanTreeFeatures tp = FeaturizePlan(plans->tp);
  EXPECT_EQ(tp.feature_dim, kPlanFeatureDim);
  EXPECT_EQ(tp.num_nodes, plans->tp.root->TreeSize());
  EXPECT_EQ(static_cast<int>(tp.x.size()), tp.num_nodes * kPlanFeatureDim);
  // Pre-order: node 0 is the root with a valid left child.
  EXPECT_EQ(tp.left[0], 1);
  // Each node has exactly one one-hot operator bit set.
  for (int i = 0; i < tp.num_nodes; ++i) {
    double sum = 0;
    for (int f = 0; f < 14; ++f) sum += tp.at(i, f);
    EXPECT_DOUBLE_EQ(sum, 1.0) << "node " << i;
  }
  // Child links are in range and acyclic (child index > parent in pre-order).
  for (int i = 0; i < tp.num_nodes; ++i) {
    if (tp.left[static_cast<size_t>(i)] >= 0) {
      EXPECT_GT(tp.left[static_cast<size_t>(i)], i);
      EXPECT_LT(tp.left[static_cast<size_t>(i)], tp.num_nodes);
    }
    if (tp.right[static_cast<size_t>(i)] >= 0) {
      EXPECT_GT(tp.right[static_cast<size_t>(i)], i);
      EXPECT_LT(tp.right[static_cast<size_t>(i)], tp.num_nodes);
    }
  }
}

TEST(TreeCnnTest, LearnsToySeparation) {
  // Two synthetic tree shapes with distinct features must be separable.
  TreeCnn::Config config;
  config.feature_dim = 4;
  TreeCnn cnn(config);
  auto make = [&](double marker, int label) {
    PairExample ex;
    for (PlanTreeFeatures* p : {&ex.tp, &ex.ap}) {
      p->num_nodes = 3;
      p->feature_dim = 4;
      p->x = {marker, 1 - marker, 0.5, 0.1,  //
              0.2,    marker,     0.3, 0.9,  //
              marker, 0.4,        0.7, 0.2};
      p->left = {1, -1, -1};
      p->right = {2, -1, -1};
    }
    ex.label = label;
    return ex;
  };
  std::vector<PairExample> data;
  for (int i = 0; i < 8; ++i) {
    data.push_back(make(1.0, 1));
    data.push_back(make(0.0, 0));
  }
  std::vector<const PairExample*> batch;
  for (const auto& ex : data) batch.push_back(&ex);
  double first_loss = cnn.TrainBatch(batch, 1e-2);
  double last_loss = first_loss;
  for (int step = 0; step < 200; ++step) {
    last_loss = cnn.TrainBatch(batch, 1e-2);
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
  EXPECT_GT(cnn.PredictApFaster(data[0].tp, data[0].ap), 0.9);
  EXPECT_LT(cnn.PredictApFaster(data[1].tp, data[1].ap), 0.1);
}

TEST(TreeCnnTest, SaveLoadRoundTrip) {
  TreeCnn::Config config;
  config.feature_dim = kPlanFeatureDim;
  TreeCnn a(config);
  PlanTreeFeatures plan;
  plan.num_nodes = 2;
  plan.feature_dim = kPlanFeatureDim;
  plan.x.assign(2 * kPlanFeatureDim, 0.3);
  plan.left = {1, -1};
  plan.right = {-1, -1};
  double before = a.PredictApFaster(plan, plan);
  std::string path = ::testing::TempDir() + "/tree_cnn_model.bin";
  ASSERT_TRUE(a.Save(path).ok());
  TreeCnn b(config);
  ASSERT_TRUE(b.Load(path).ok());
  EXPECT_DOUBLE_EQ(b.PredictApFaster(plan, plan), before);
  // Mismatched dimensions are rejected.
  TreeCnn::Config other = config;
  other.conv1 = 16;
  TreeCnn c(other);
  EXPECT_FALSE(c.Load(path).ok());
}

class RouterTrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;  // plan-only: labels from latency model
    ASSERT_TRUE(system_->Init(config).ok());

    QueryGenerator gen(config.stats_scale_factor, /*seed=*/1234);
    train_ = new std::vector<PairExample>();
    test_ = new std::vector<PairExample>();
    auto queries = gen.GenerateMix(320);
    int i = 0;
    for (const auto& gq : queries) {
      auto bound = system_->Bind(gq.sql);
      ASSERT_TRUE(bound.ok()) << gq.sql << ": " << bound.status();
      auto plans = system_->PlanBoth(*bound);
      ASSERT_TRUE(plans.ok()) << gq.sql;
      EngineKind faster = system_->LatencyMs(plans->tp) <=
                                  system_->LatencyMs(plans->ap)
                              ? EngineKind::kTp
                              : EngineKind::kAp;
      SmartRouter featurizer_only(1);
      PairExample ex = featurizer_only.MakeExample(*plans, faster);
      (++i % 5 == 0 ? test_ : train_)->push_back(std::move(ex));
    }
  }
  static void TearDownTestSuite() {
    delete system_;
    delete train_;
    delete test_;
  }
  static HtapSystem* system_;
  static std::vector<PairExample>* train_;
  static std::vector<PairExample>* test_;
};

HtapSystem* RouterTrainingTest::system_ = nullptr;
std::vector<PairExample>* RouterTrainingTest::train_ = nullptr;
std::vector<PairExample>* RouterTrainingTest::test_ = nullptr;

TEST_F(RouterTrainingTest, LabelsHaveBothClasses) {
  int ap = 0;
  for (const auto& ex : *train_) ap += ex.label;
  EXPECT_GT(ap, static_cast<int>(train_->size()) / 10);
  EXPECT_LT(ap, static_cast<int>(train_->size()) * 9 / 10);
}

TEST_F(RouterTrainingTest, RouterReachesHighAccuracy) {
  SmartRouter router(7);
  RouterTrainStats stats = router.Train(*train_, /*epochs=*/60);
  // The paper: "the router achieves high accuracy in identifying the more
  // efficient plan".
  EXPECT_GT(stats.train_accuracy, 0.93) << "loss=" << stats.final_loss;
  EXPECT_GT(router.EvaluateAccuracy(*test_), 0.85);
}

TEST_F(RouterTrainingTest, ModelIsLightweight) {
  SmartRouter router(7);
  // Paper: model < 1 MB, inference ~1 ms.
  EXPECT_LT(router.model_bytes(), 1u << 20);
  const PairExample& ex = (*train_)[0];
  PlanPair dummy;  // inference goes through featurized trees directly
  (void)dummy;
  WallTimer timer;
  constexpr int kReps = 100;
  double acc = 0;
  for (int i = 0; i < kReps; ++i) {
    acc += router.EvaluateAccuracy({ex});
  }
  double per_inference_ms = timer.ElapsedMillis() / kReps;
  EXPECT_LT(per_inference_ms, 5.0);
  (void)acc;
}

TEST_F(RouterTrainingTest, EmbeddingsAre16DimAndDiscriminative) {
  SmartRouter router(7);
  router.Train(*train_, 60);
  EXPECT_EQ(router.embedding_dim(), 16);  // the paper's 16-dim pair encoding
  // Embeddings of same-label pairs should be closer on average than
  // opposite-label pairs (the property RAG retrieval relies on).
  auto dist = [](const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
  };
  std::vector<std::vector<double>> embeddings;
  std::vector<int> labels;
  for (size_t i = 0; i < train_->size() && i < 60; ++i) {
    const PairExample& ex = (*train_)[i];
    std::vector<double> e = router.EmbedFeatures(ex.tp, ex.ap);
    ASSERT_EQ(e.size(), 16u);
    embeddings.push_back(std::move(e));
    labels.push_back(ex.label);
  }
  double same_sum = 0, diff_sum = 0;
  int same_n = 0, diff_n = 0;
  for (size_t i = 0; i < embeddings.size(); ++i) {
    for (size_t j = i + 1; j < embeddings.size(); ++j) {
      double d = dist(embeddings[i], embeddings[j]);
      if (labels[i] == labels[j]) {
        same_sum += d;
        ++same_n;
      } else {
        diff_sum += d;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_LT(same_sum / same_n, diff_sum / diff_n);
}

TEST_F(RouterTrainingTest, DeterministicForFixedSeed) {
  SmartRouter a(11), b(11);
  a.Train(*train_, 10);
  b.Train(*train_, 10);
  EXPECT_DOUBLE_EQ(a.EvaluateAccuracy(*test_), b.EvaluateAccuracy(*test_));
}

// RCU-publication hammer: readers route/evaluate through the frozen
// snapshot while a writer loops the master-side mutators (Train,
// CloneWeightsFrom, AdoptMaster). Run under TSan in CI, this proves the
// atomic shared_ptr publication has no torn reads — every in-flight call
// sees one complete snapshot, and every probability stays well-formed.
TEST_F(RouterTrainingTest, ConcurrentReadersSurviveRepublicationHammer) {
  SmartRouter serving(7);
  serving.Train(*train_, 10);
  SmartRouter other(11);
  other.Train(*test_, 10);
  std::unique_ptr<TreeCnn> retained = serving.CloneMaster();
  const uint32_t crc_retained = serving.frozen_crc();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> invalid{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (size_t i = 0; i < 8 && i < test_->size(); ++i) {
          const PairExample& ex = (*test_)[i];
          auto frozen = serving.frozen_snapshot();
          double p = frozen->PredictApFaster(ex.tp, ex.ap);
          if (!(p >= 0.0 && p <= 1.0)) {
            invalid.fetch_add(1, std::memory_order_relaxed);
          }
        }
        double acc = serving.EvaluateAccuracy(
            std::vector<PairExample>(test_->begin(), test_->begin() + 8));
        if (!(acc >= 0.0 && acc <= 1.0)) {
          invalid.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Master-side mutators are serialized (one writer), as the lifecycle
  // manager guarantees; each iteration republishes a fresh snapshot.
  for (int i = 0; i < 60; ++i) {
    switch (i % 3) {
      case 0:
        serving.Train(std::vector<PairExample>(train_->begin(),
                                               train_->begin() + 16),
                      1);
        break;
      case 1:
        serving.CloneWeightsFrom(other);
        break;
      default:
        ASSERT_TRUE(serving.AdoptMaster(*retained).ok());
        break;
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(invalid.load(), 0u);
  // The last publication was the retained weights — bit-identical CRC.
  EXPECT_EQ(serving.frozen_crc(), crc_retained);
}

}  // namespace
}  // namespace htapex
