#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "catalog/tpch.h"
#include "common/rng.h"
#include "storage/btree.h"
#include "storage/column_store.h"
#include "storage/datagen.h"
#include "storage/row_store.h"

namespace htapex {
namespace {

TEST(BTreeTest, InsertAndPointLookup) {
  BTreeIndex idx;
  for (int i = 0; i < 1000; ++i) {
    idx.Insert(Value::Int(i * 2), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(idx.num_entries(), 1000u);
  auto hits = idx.PointLookup(Value::Int(500));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 250u);
  EXPECT_TRUE(idx.PointLookup(Value::Int(501)).empty());
  EXPECT_GT(idx.height(), 1);
}

TEST(BTreeTest, DuplicateKeys) {
  BTreeIndex idx;
  // Many duplicates so they straddle leaf splits.
  for (uint32_t i = 0; i < 500; ++i) idx.Insert(Value::Int(7), i);
  for (uint32_t i = 500; i < 600; ++i) idx.Insert(Value::Int(9), i);
  auto hits = idx.PointLookup(Value::Int(7));
  EXPECT_EQ(hits.size(), 500u);
  std::set<uint32_t> unique(hits.begin(), hits.end());
  EXPECT_EQ(unique.size(), 500u);
  EXPECT_EQ(idx.PointLookup(Value::Int(9)).size(), 100u);
  EXPECT_TRUE(idx.PointLookup(Value::Int(8)).empty());
}

TEST(BTreeTest, RangeScanOrdered) {
  BTreeIndex idx;
  Rng rng(5);
  std::vector<int64_t> keys;
  for (uint32_t i = 0; i < 2000; ++i) {
    int64_t k = rng.Uniform(0, 10000);
    keys.push_back(k);
    idx.Insert(Value::Int(k), i);
  }
  std::vector<int64_t> visited;
  idx.RangeScan(nullptr, true, nullptr, true,
                [&](const Value& k, uint32_t) {
                  visited.push_back(k.AsInt());
                  return true;
                });
  EXPECT_EQ(visited.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

TEST(BTreeTest, RangeScanBounds) {
  BTreeIndex idx;
  for (uint32_t i = 0; i <= 100; ++i) idx.Insert(Value::Int(i), i);
  Value lo = Value::Int(10), hi = Value::Int(20);
  std::vector<int64_t> got;
  idx.RangeScan(&lo, true, &hi, true, [&](const Value& k, uint32_t) {
    got.push_back(k.AsInt());
    return true;
  });
  ASSERT_EQ(got.size(), 11u);
  EXPECT_EQ(got.front(), 10);
  EXPECT_EQ(got.back(), 20);
  got.clear();
  idx.RangeScan(&lo, false, &hi, false, [&](const Value& k, uint32_t) {
    got.push_back(k.AsInt());
    return true;
  });
  ASSERT_EQ(got.size(), 9u);
  EXPECT_EQ(got.front(), 11);
  EXPECT_EQ(got.back(), 19);
}

TEST(BTreeTest, RangeScanEarlyStopForLimit) {
  BTreeIndex idx;
  for (uint32_t i = 0; i < 1000; ++i) idx.Insert(Value::Int(i), i);
  int count = 0;
  idx.RangeScan(nullptr, true, nullptr, true, [&](const Value&, uint32_t) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(BTreeTest, FullScanDescReversesAscOrder) {
  BTreeIndex idx;
  Rng rng(8);
  for (uint32_t i = 0; i < 3000; ++i) {
    idx.Insert(Value::Int(rng.Uniform(0, 5000)), i);
  }
  std::vector<std::pair<int64_t, uint32_t>> asc, desc;
  idx.FullScan([&](const Value& k, uint32_t r) {
    asc.emplace_back(k.AsInt(), r);
    return true;
  });
  idx.FullScanDesc([&](const Value& k, uint32_t r) {
    desc.emplace_back(k.AsInt(), r);
    return true;
  });
  ASSERT_EQ(asc.size(), desc.size());
  std::reverse(desc.begin(), desc.end());
  EXPECT_EQ(asc, desc);
}

TEST(BTreeTest, FullScanDescEarlyStop) {
  BTreeIndex idx;
  for (uint32_t i = 0; i < 500; ++i) idx.Insert(Value::Int(i), i);
  std::vector<int64_t> got;
  idx.FullScanDesc([&](const Value& k, uint32_t) {
    got.push_back(k.AsInt());
    return got.size() < 3;
  });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 499);
  EXPECT_EQ(got[2], 497);
}

TEST(BTreeTest, StringKeys) {
  BTreeIndex idx;
  std::vector<std::string> names = {"egypt", "france", "algeria", "japan"};
  for (uint32_t i = 0; i < names.size(); ++i) {
    idx.Insert(Value::Str(names[i]), i);
  }
  auto hits = idx.PointLookup(Value::Str("egypt"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

class DatagenTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(tpch::BuildCatalog(&catalog_, 0.01).ok()); }
  Catalog catalog_;
  TpchDataGenerator gen_{0.01};
};

TEST_F(DatagenTest, RowCountsMatchScale) {
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  EXPECT_EQ(customer->num_rows(), 1500u);
  auto nation = gen_.Generate("nation");
  ASSERT_TRUE(nation.ok());
  EXPECT_EQ(nation->num_rows(), 25u);
  EXPECT_FALSE(gen_.Generate("bogus").ok());
}

TEST_F(DatagenTest, Deterministic) {
  TpchDataGenerator g1(0.01), g2(0.01);
  auto a = g1.Generate("customer");
  auto b = g2.Generate("customer");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < a->num_rows(); i += 100) {
    for (size_t c = 0; c < a->rows[i].size(); ++c) {
      EXPECT_EQ(a->rows[i][c].Compare(b->rows[i][c]), 0);
    }
  }
}

TEST_F(DatagenTest, PhonePrefixEncodesNation) {
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  auto schema = catalog_.GetTable("customer");
  int nk = (*schema)->ColumnIndex("c_nationkey");
  int ph = (*schema)->ColumnIndex("c_phone");
  for (size_t i = 0; i < customer->num_rows(); i += 37) {
    const Row& row = customer->rows[i];
    int64_t nation = row[static_cast<size_t>(nk)].AsInt();
    const std::string& phone = row[static_cast<size_t>(ph)].AsString();
    EXPECT_EQ(phone.substr(0, 2), std::to_string(10 + nation));
  }
}

TEST_F(DatagenTest, OrderStatusSkew) {
  auto orders = gen_.Generate("orders");
  ASSERT_TRUE(orders.ok());
  int p_count = 0;
  for (const Row& row : orders->rows) {
    if (row[2].AsString() == "p") ++p_count;
  }
  double frac = static_cast<double>(p_count) / static_cast<double>(orders->num_rows());
  EXPECT_GT(frac, 0.005);
  EXPECT_LT(frac, 0.06);  // 'p' is rare, ~2.6%
}

TEST_F(DatagenTest, LineitemForeignKeysValid) {
  auto orders = gen_.Generate("orders");
  auto lineitem = gen_.Generate("lineitem");
  ASSERT_TRUE(orders.ok() && lineitem.ok());
  std::set<int64_t> order_keys;
  for (const Row& r : orders->rows) order_keys.insert(r[0].AsInt());
  for (size_t i = 0; i < lineitem->num_rows(); i += 53) {
    EXPECT_TRUE(order_keys.count(lineitem->rows[i][0].AsInt()) > 0);
  }
  EXPECT_GE(lineitem->num_rows(), orders->num_rows());
}

TEST_F(DatagenTest, RowStoreLoadAndIndex) {
  RowStore store;
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  ASSERT_TRUE(store.LoadTable(catalog_, std::move(*customer)).ok());
  EXPECT_EQ(store.RowCount("customer"), 1500u);
  // PK index was built automatically.
  const BTreeIndex* pk = store.GetIndex("pk_customer");
  ASSERT_NE(pk, nullptr);
  auto hits = pk->PointLookup(Value::Int(42));
  ASSERT_EQ(hits.size(), 1u);
  auto table = store.GetTable("customer");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->rows[hits[0]][0].AsInt(), 42);
}

TEST_F(DatagenTest, RowStoreUserIndexBuiltLater) {
  RowStore store;
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  ASSERT_TRUE(store.LoadTable(catalog_, std::move(*customer)).ok());
  EXPECT_EQ(store.GetIndex("idx_c_phone"), nullptr);
  IndexDef idx{"idx_c_phone", "customer", {"c_phone"}, false, false};
  ASSERT_TRUE(catalog_.AddIndex(idx).ok());
  ASSERT_TRUE(store.BuildIndex(catalog_, "idx_c_phone").ok());
  ASSERT_NE(store.GetIndex("idx_c_phone"), nullptr);
  EXPECT_EQ(store.GetIndex("idx_c_phone")->num_entries(), 1500u);
}

TEST_F(DatagenTest, ColumnStoreRoundTrip) {
  ColumnStore store;
  auto nation = gen_.Generate("nation");
  ASSERT_TRUE(nation.ok());
  TableData copy = *nation;
  ASSERT_TRUE(store.LoadTable(catalog_, copy).ok());
  auto table = store.GetTable("nation");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows, 25u);
  for (size_t r = 0; r < 25; ++r) {
    for (size_t c = 0; c < copy.rows[r].size(); ++c) {
      EXPECT_EQ((*table)->columns[c].Get(r).Compare(copy.rows[r][c]), 0);
    }
  }
}

TEST_F(DatagenTest, ZoneMapsPruneSegments) {
  ColumnStore store;
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  ASSERT_TRUE(store.LoadTable(catalog_, *customer).ok());
  auto table = store.GetTable("customer");
  ASSERT_TRUE(table.ok());
  const ColumnVector& custkey = (*table)->columns[0];  // 1..1500 in order
  ASSERT_EQ(custkey.num_segments(), 2u);               // 1500 rows, 1024/segment
  // Key 42 lives in segment 0 only.
  EXPECT_TRUE(custkey.SegmentMayContain(0, Value::Int(42)));
  EXPECT_FALSE(custkey.SegmentMayContain(1, Value::Int(42)));
  Value min, max;
  ASSERT_TRUE(custkey.ZoneRange(0, &min, &max));
  EXPECT_EQ(min.AsInt(), 1);
  EXPECT_EQ(max.AsInt(), 1024);
}

TEST(ColumnVectorTest, NullHandling) {
  ColumnVector col(DataType::kInt);
  col.Append(Value::Null());
  col.Append(Value::Int(5));
  EXPECT_TRUE(col.Get(0).is_null());
  EXPECT_EQ(col.Get(1).AsInt(), 5);
  Value min, max;
  ASSERT_TRUE(col.ZoneRange(0, &min, &max));
  EXPECT_EQ(min.AsInt(), 5);
  EXPECT_EQ(max.AsInt(), 5);
}

TEST(ColumnVectorTest, AllNullSegmentHasNoZoneRange) {
  ColumnVector col(DataType::kString);
  col.Append(Value::Null());
  Value min, max;
  EXPECT_FALSE(col.ZoneRange(0, &min, &max));
  EXPECT_FALSE(col.SegmentMayContain(0, Value::Str("x")));
}

}  // namespace
}  // namespace htapex
