#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "catalog/tpch.h"
#include "common/rng.h"
#include "storage/btree.h"
#include "storage/column_store.h"
#include "storage/datagen.h"
#include "storage/row_store.h"

namespace htapex {
namespace {

TEST(BTreeTest, InsertAndPointLookup) {
  BTreeIndex idx;
  for (int i = 0; i < 1000; ++i) {
    idx.Insert(Value::Int(i * 2), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(idx.num_entries(), 1000u);
  auto hits = idx.PointLookup(Value::Int(500));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 250u);
  EXPECT_TRUE(idx.PointLookup(Value::Int(501)).empty());
  EXPECT_GT(idx.height(), 1);
}

TEST(BTreeTest, DuplicateKeys) {
  BTreeIndex idx;
  // Many duplicates so they straddle leaf splits.
  for (uint32_t i = 0; i < 500; ++i) idx.Insert(Value::Int(7), i);
  for (uint32_t i = 500; i < 600; ++i) idx.Insert(Value::Int(9), i);
  auto hits = idx.PointLookup(Value::Int(7));
  EXPECT_EQ(hits.size(), 500u);
  std::set<uint32_t> unique(hits.begin(), hits.end());
  EXPECT_EQ(unique.size(), 500u);
  EXPECT_EQ(idx.PointLookup(Value::Int(9)).size(), 100u);
  EXPECT_TRUE(idx.PointLookup(Value::Int(8)).empty());
}

TEST(BTreeTest, RangeScanOrdered) {
  BTreeIndex idx;
  Rng rng(5);
  std::vector<int64_t> keys;
  for (uint32_t i = 0; i < 2000; ++i) {
    int64_t k = rng.Uniform(0, 10000);
    keys.push_back(k);
    idx.Insert(Value::Int(k), i);
  }
  std::vector<int64_t> visited;
  idx.RangeScan(nullptr, true, nullptr, true,
                [&](const Value& k, uint32_t) {
                  visited.push_back(k.AsInt());
                  return true;
                });
  EXPECT_EQ(visited.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

TEST(BTreeTest, RangeScanBounds) {
  BTreeIndex idx;
  for (uint32_t i = 0; i <= 100; ++i) idx.Insert(Value::Int(i), i);
  Value lo = Value::Int(10), hi = Value::Int(20);
  std::vector<int64_t> got;
  idx.RangeScan(&lo, true, &hi, true, [&](const Value& k, uint32_t) {
    got.push_back(k.AsInt());
    return true;
  });
  ASSERT_EQ(got.size(), 11u);
  EXPECT_EQ(got.front(), 10);
  EXPECT_EQ(got.back(), 20);
  got.clear();
  idx.RangeScan(&lo, false, &hi, false, [&](const Value& k, uint32_t) {
    got.push_back(k.AsInt());
    return true;
  });
  ASSERT_EQ(got.size(), 9u);
  EXPECT_EQ(got.front(), 11);
  EXPECT_EQ(got.back(), 19);
}

TEST(BTreeTest, RangeScanEarlyStopForLimit) {
  BTreeIndex idx;
  for (uint32_t i = 0; i < 1000; ++i) idx.Insert(Value::Int(i), i);
  int count = 0;
  idx.RangeScan(nullptr, true, nullptr, true, [&](const Value&, uint32_t) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(BTreeTest, FullScanDescReversesAscOrder) {
  BTreeIndex idx;
  Rng rng(8);
  for (uint32_t i = 0; i < 3000; ++i) {
    idx.Insert(Value::Int(rng.Uniform(0, 5000)), i);
  }
  std::vector<std::pair<int64_t, uint32_t>> asc, desc;
  idx.FullScan([&](const Value& k, uint32_t r) {
    asc.emplace_back(k.AsInt(), r);
    return true;
  });
  idx.FullScanDesc([&](const Value& k, uint32_t r) {
    desc.emplace_back(k.AsInt(), r);
    return true;
  });
  ASSERT_EQ(asc.size(), desc.size());
  std::reverse(desc.begin(), desc.end());
  EXPECT_EQ(asc, desc);
}

TEST(BTreeTest, FullScanDescEarlyStop) {
  BTreeIndex idx;
  for (uint32_t i = 0; i < 500; ++i) idx.Insert(Value::Int(i), i);
  std::vector<int64_t> got;
  idx.FullScanDesc([&](const Value& k, uint32_t) {
    got.push_back(k.AsInt());
    return got.size() < 3;
  });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 499);
  EXPECT_EQ(got[2], 497);
}

TEST(BTreeTest, StringKeys) {
  BTreeIndex idx;
  std::vector<std::string> names = {"egypt", "france", "algeria", "japan"};
  for (uint32_t i = 0; i < names.size(); ++i) {
    idx.Insert(Value::Str(names[i]), i);
  }
  auto hits = idx.PointLookup(Value::Str("egypt"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

class DatagenTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(tpch::BuildCatalog(&catalog_, 0.01).ok()); }
  Catalog catalog_;
  TpchDataGenerator gen_{0.01};
};

TEST_F(DatagenTest, RowCountsMatchScale) {
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  EXPECT_EQ(customer->num_rows(), 1500u);
  auto nation = gen_.Generate("nation");
  ASSERT_TRUE(nation.ok());
  EXPECT_EQ(nation->num_rows(), 25u);
  EXPECT_FALSE(gen_.Generate("bogus").ok());
}

TEST_F(DatagenTest, Deterministic) {
  TpchDataGenerator g1(0.01), g2(0.01);
  auto a = g1.Generate("customer");
  auto b = g2.Generate("customer");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < a->num_rows(); i += 100) {
    for (size_t c = 0; c < a->rows[i].size(); ++c) {
      EXPECT_EQ(a->rows[i][c].Compare(b->rows[i][c]), 0);
    }
  }
}

TEST_F(DatagenTest, PhonePrefixEncodesNation) {
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  auto schema = catalog_.GetTable("customer");
  int nk = (*schema)->ColumnIndex("c_nationkey");
  int ph = (*schema)->ColumnIndex("c_phone");
  for (size_t i = 0; i < customer->num_rows(); i += 37) {
    const Row& row = customer->rows[i];
    int64_t nation = row[static_cast<size_t>(nk)].AsInt();
    const std::string& phone = row[static_cast<size_t>(ph)].AsString();
    EXPECT_EQ(phone.substr(0, 2), std::to_string(10 + nation));
  }
}

TEST_F(DatagenTest, OrderStatusSkew) {
  auto orders = gen_.Generate("orders");
  ASSERT_TRUE(orders.ok());
  int p_count = 0;
  for (const Row& row : orders->rows) {
    if (row[2].AsString() == "p") ++p_count;
  }
  double frac = static_cast<double>(p_count) / static_cast<double>(orders->num_rows());
  EXPECT_GT(frac, 0.005);
  EXPECT_LT(frac, 0.06);  // 'p' is rare, ~2.6%
}

TEST_F(DatagenTest, LineitemForeignKeysValid) {
  auto orders = gen_.Generate("orders");
  auto lineitem = gen_.Generate("lineitem");
  ASSERT_TRUE(orders.ok() && lineitem.ok());
  std::set<int64_t> order_keys;
  for (const Row& r : orders->rows) order_keys.insert(r[0].AsInt());
  for (size_t i = 0; i < lineitem->num_rows(); i += 53) {
    EXPECT_TRUE(order_keys.count(lineitem->rows[i][0].AsInt()) > 0);
  }
  EXPECT_GE(lineitem->num_rows(), orders->num_rows());
}

TEST_F(DatagenTest, RowStoreLoadAndIndex) {
  RowStore store;
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  ASSERT_TRUE(store.LoadTable(catalog_, std::move(*customer)).ok());
  EXPECT_EQ(store.RowCount("customer"), 1500u);
  // PK index was built automatically.
  const BTreeIndex* pk = store.GetIndex("pk_customer");
  ASSERT_NE(pk, nullptr);
  auto hits = pk->PointLookup(Value::Int(42));
  ASSERT_EQ(hits.size(), 1u);
  auto table = store.GetTable("customer");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->rows[hits[0]][0].AsInt(), 42);
}

TEST_F(DatagenTest, RowStoreUserIndexBuiltLater) {
  RowStore store;
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  ASSERT_TRUE(store.LoadTable(catalog_, std::move(*customer)).ok());
  EXPECT_EQ(store.GetIndex("idx_c_phone"), nullptr);
  IndexDef idx{"idx_c_phone", "customer", {"c_phone"}, false, false};
  ASSERT_TRUE(catalog_.AddIndex(idx).ok());
  ASSERT_TRUE(store.BuildIndex(catalog_, "idx_c_phone").ok());
  ASSERT_NE(store.GetIndex("idx_c_phone"), nullptr);
  EXPECT_EQ(store.GetIndex("idx_c_phone")->num_entries(), 1500u);
}

TEST_F(DatagenTest, ColumnStoreRoundTrip) {
  ColumnStore store;
  auto nation = gen_.Generate("nation");
  ASSERT_TRUE(nation.ok());
  TableData copy = *nation;
  ASSERT_TRUE(store.LoadTable(catalog_, copy).ok());
  auto table = store.GetTable("nation");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows, 25u);
  for (size_t r = 0; r < 25; ++r) {
    for (size_t c = 0; c < copy.rows[r].size(); ++c) {
      EXPECT_EQ((*table)->columns[c].Get(r).Compare(copy.rows[r][c]), 0);
    }
  }
}

TEST_F(DatagenTest, ZoneMapsPruneSegments) {
  ColumnStore store;
  auto customer = gen_.Generate("customer");
  ASSERT_TRUE(customer.ok());
  ASSERT_TRUE(store.LoadTable(catalog_, *customer).ok());
  auto table = store.GetTable("customer");
  ASSERT_TRUE(table.ok());
  const ColumnVector& custkey = (*table)->columns[0];  // 1..1500 in order
  ASSERT_EQ(custkey.num_segments(), 2u);               // 1500 rows, 1024/segment
  // Key 42 lives in segment 0 only.
  EXPECT_TRUE(custkey.SegmentMayContain(0, Value::Int(42)));
  EXPECT_FALSE(custkey.SegmentMayContain(1, Value::Int(42)));
  Value min, max;
  ASSERT_TRUE(custkey.ZoneRange(0, &min, &max));
  EXPECT_EQ(min.AsInt(), 1);
  EXPECT_EQ(max.AsInt(), 1024);
}

TEST(ColumnVectorTest, NullHandling) {
  ColumnVector col(DataType::kInt);
  col.Append(Value::Null());
  col.Append(Value::Int(5));
  EXPECT_TRUE(col.Get(0).is_null());
  EXPECT_EQ(col.Get(1).AsInt(), 5);
  Value min, max;
  ASSERT_TRUE(col.ZoneRange(0, &min, &max));
  EXPECT_EQ(min.AsInt(), 5);
  EXPECT_EQ(max.AsInt(), 5);
}

TEST(ColumnVectorTest, AllNullSegmentHasNoZoneRange) {
  ColumnVector col(DataType::kString);
  col.Append(Value::Null());
  Value min, max;
  EXPECT_FALSE(col.ZoneRange(0, &min, &max));
  EXPECT_FALSE(col.SegmentMayContain(0, Value::Str("x")));
}

// ---------------------------------------------------------------------------
// Zone-map pruning regressions: a wrong prune silently drops rows, so every
// prune decision below is checked against EvalPredicate semantics.
// ---------------------------------------------------------------------------

class ZonePruneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Segment 0: all NULL. Segment 1: values 1..1024 with one NULL at the
    // end. Segment 2 (partial): constant 7, no nulls.
    col_ = ColumnVector(DataType::kInt);
    for (size_t i = 0; i < ColumnVector::kSegmentRows; ++i) {
      col_.Append(Value::Null());
    }
    for (size_t i = 0; i + 1 < ColumnVector::kSegmentRows; ++i) {
      col_.Append(Value::Int(static_cast<int64_t>(i) + 1));
    }
    col_.Append(Value::Null());
    for (int i = 0; i < 10; ++i) col_.Append(Value::Int(7));
    ASSERT_EQ(col_.num_segments(), 3u);
    ASSERT_TRUE(col_.SegmentAllNull(0));
    ASSERT_TRUE(col_.SegmentHasNulls(1));
    ASSERT_FALSE(col_.SegmentAllNull(1));
    ASSERT_FALSE(col_.SegmentHasNulls(2));
  }

  static std::unique_ptr<Expr> Cmp(CompareOp op, Value lit) {
    return MakeComparison(op, MakeColumnRef("t", "x"),
                          MakeLiteral(std::move(lit)));
  }

  static std::unique_ptr<Expr> IsNull(bool negated) {
    auto e = std::make_unique<Expr>(ExprKind::kIsNull);
    e->negated = negated;
    e->children.push_back(MakeColumnRef("t", "x"));
    return e;
  }

  static std::unique_ptr<Expr> In(std::vector<Value> lits) {
    auto e = std::make_unique<Expr>(ExprKind::kIn);
    e->children.push_back(MakeColumnRef("t", "x"));
    for (Value& v : lits) e->children.push_back(MakeLiteral(std::move(v)));
    return e;
  }

  static std::unique_ptr<Expr> Between(Value lo, Value hi) {
    auto e = std::make_unique<Expr>(ExprKind::kBetween);
    e->children.push_back(MakeColumnRef("t", "x"));
    e->children.push_back(MakeLiteral(std::move(lo)));
    e->children.push_back(MakeLiteral(std::move(hi)));
    return e;
  }

  ColumnVector col_{DataType::kInt};
};

TEST_F(ZonePruneTest, AllNullSegmentMatchesOnlyIsNull) {
  // Regression: an all-NULL segment must be pruned for every value
  // predicate (NULL comparisons never pass) but NOT for IS NULL.
  auto eq = Cmp(CompareOp::kEq, Value::Int(5));
  ASSERT_TRUE(IsZoneCheckable(*eq));
  EXPECT_FALSE(SegmentMayMatch(col_, 0, *eq));
  EXPECT_TRUE(SegmentMayMatch(col_, 1, *eq));   // 5 is in [1, 1023]
  EXPECT_FALSE(SegmentMayMatch(col_, 2, *eq));  // constant-7 segment

  EXPECT_FALSE(SegmentMayMatch(col_, 0, *Cmp(CompareOp::kLt, Value::Int(5))));
  EXPECT_FALSE(SegmentMayMatch(col_, 0, *Between(Value::Int(1), Value::Int(9))));
  EXPECT_FALSE(SegmentMayMatch(col_, 0, *In({Value::Int(1), Value::Int(2)})));

  auto is_null = IsNull(false);
  ASSERT_TRUE(IsZoneCheckable(*is_null));
  EXPECT_TRUE(SegmentMayMatch(col_, 0, *is_null));
  EXPECT_TRUE(SegmentMayMatch(col_, 1, *is_null));   // has one null
  EXPECT_FALSE(SegmentMayMatch(col_, 2, *is_null));  // no nulls
}

TEST_F(ZonePruneTest, IsNotNullPrunesOnlyAllNullSegments) {
  auto not_null = IsNull(true);
  ASSERT_TRUE(IsZoneCheckable(*not_null));
  EXPECT_FALSE(SegmentMayMatch(col_, 0, *not_null));
  EXPECT_TRUE(SegmentMayMatch(col_, 1, *not_null));
  EXPECT_TRUE(SegmentMayMatch(col_, 2, *not_null));
}

TEST_F(ZonePruneTest, NullLiteralsMatchNothing) {
  // `x = NULL`, `x BETWEEN NULL AND ...`, `x IN (NULL)` are never true, so
  // every segment may be pruned — including ones whose zone range would
  // otherwise overlap.
  EXPECT_FALSE(SegmentMayMatch(col_, 1, *Cmp(CompareOp::kEq, Value::Null())));
  EXPECT_FALSE(SegmentMayMatch(col_, 1, *Between(Value::Null(), Value::Int(9))));
  EXPECT_FALSE(SegmentMayMatch(col_, 1, *Between(Value::Int(1), Value::Null())));
  EXPECT_FALSE(SegmentMayMatch(col_, 1, *In({Value::Null()})));
  // But a NULL *element* beside a matching one must not prune the segment.
  EXPECT_TRUE(SegmentMayMatch(col_, 1, *In({Value::Null(), Value::Int(5)})));
  EXPECT_FALSE(SegmentMayMatch(col_, 2, *In({Value::Null(), Value::Int(5)})));
}

TEST_F(ZonePruneTest, NotEqualPrunesOnlyConstantSegments) {
  // kNe can only prune a segment whose every value equals the literal.
  auto ne7 = Cmp(CompareOp::kNe, Value::Int(7));
  EXPECT_FALSE(SegmentMayMatch(col_, 2, *ne7));  // all rows are 7
  EXPECT_TRUE(SegmentMayMatch(col_, 1, *ne7));   // range segment
  auto ne8 = Cmp(CompareOp::kNe, Value::Int(8));
  EXPECT_TRUE(SegmentMayMatch(col_, 2, *ne8));   // 7 != 8 everywhere
  EXPECT_FALSE(SegmentMayMatch(col_, 0, *ne7));  // NULL != 7 is not true
}

TEST_F(ZonePruneTest, RangePredicatesRespectZoneBounds) {
  EXPECT_FALSE(SegmentMayMatch(col_, 1, *Cmp(CompareOp::kGt, Value::Int(1023))));
  EXPECT_TRUE(SegmentMayMatch(col_, 1, *Cmp(CompareOp::kGe, Value::Int(1023))));
  EXPECT_FALSE(SegmentMayMatch(col_, 1, *Cmp(CompareOp::kLt, Value::Int(1))));
  EXPECT_TRUE(SegmentMayMatch(col_, 1, *Cmp(CompareOp::kLe, Value::Int(1))));
  EXPECT_FALSE(SegmentMayMatch(col_, 1, *Between(Value::Int(2000), Value::Int(3000))));
  EXPECT_TRUE(SegmentMayMatch(col_, 1, *Between(Value::Int(1000), Value::Int(3000))));
}

TEST_F(ZonePruneTest, PruningAgreesWithExecutionOnAllNullSegments) {
  // End-to-end guard: a table whose first segment of a filtered column is
  // all-NULL still returns the right COUNT through the AP scan.
  // (Regression for wrongly treating a no-zone-range segment as prunable
  // under IS NULL, or unprunable under value predicates.)
  size_t n = col_.size();
  size_t nulls = 0, sevens = 0;
  for (size_t i = 0; i < n; ++i) {
    Value v = col_.Get(i);
    if (v.is_null()) {
      ++nulls;
    } else if (v.AsInt() == 7) {
      ++sevens;
    }
  }
  EXPECT_EQ(nulls, ColumnVector::kSegmentRows + 1);
  EXPECT_EQ(sevens, 11u);  // value 7 in segment 1 plus ten in segment 2
  // Each segment that may match `x = 7` must actually contain a 7 or be a
  // conservative keep; segments pruned must contain none.
  auto eq7 = Cmp(CompareOp::kEq, Value::Int(7));
  for (size_t seg = 0; seg < col_.num_segments(); ++seg) {
    if (SegmentMayMatch(col_, seg, *eq7)) continue;
    size_t begin = seg * ColumnVector::kSegmentRows;
    size_t end = std::min(n, begin + ColumnVector::kSegmentRows);
    for (size_t i = begin; i < end; ++i) {
      Value v = col_.Get(i);
      EXPECT_TRUE(v.is_null() || v.AsInt() != 7)
          << "segment " << seg << " wrongly pruned: row " << i << " matches";
    }
  }
}

}  // namespace
}  // namespace htapex
