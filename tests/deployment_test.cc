#include <gtest/gtest.h>

#include "core/htap_explainer.h"

namespace htapex {
namespace {

/// Deployment lifecycle: a trained router and a curated knowledge base are
/// persisted, then loaded into a completely fresh explainer process, which
/// must produce identical explanations — the "train once, serve anywhere"
/// property a production rollout needs.
TEST(DeploymentTest, PersistedStateReproducesExplanations) {
  HtapConfig sys_config;
  sys_config.data_scale_factor = 0.0;

  std::string router_path = ::testing::TempDir() + "/router.bin";
  std::string kb_path = ::testing::TempDir() + "/kb.json";
  const char* sql =
      "SELECT COUNT(*) FROM customer, nation, orders "
      "WHERE o_custkey = c_custkey AND n_nationkey = c_nationkey "
      "AND n_name = 'egypt' AND c_mktsegment = 'machinery' "
      "AND o_orderstatus = 'p'";

  std::string original_text;
  ExplanationGrade original_grade;
  {
    HtapSystem system;
    ASSERT_TRUE(system.Init(sys_config).ok());
    HtapExplainer trainer(&system, ExplainerConfig{});
    ASSERT_TRUE(trainer.TrainRouter().ok());
    ASSERT_TRUE(trainer.BuildDefaultKnowledgeBase().ok());
    auto result = trainer.Explain(sql);
    ASSERT_TRUE(result.ok());
    original_text = result->generation.text;
    original_grade = result->grade.grade;
    ASSERT_TRUE(trainer.router().Save(router_path).ok());
    ASSERT_TRUE(trainer.knowledge_base().SaveJson(kb_path).ok());
  }

  // A fresh process: different seed, no training, everything from disk.
  {
    HtapSystem system;
    ASSERT_TRUE(system.Init(sys_config).ok());
    ExplainerConfig config;
    config.seed = 12345;  // different seed: state must come from the files
    HtapExplainer server(&system, config);
    ASSERT_TRUE(server.mutable_router().Load(router_path).ok());
    ASSERT_TRUE(server.mutable_knowledge_base().LoadJson(kb_path).ok());
    EXPECT_EQ(server.knowledge_base().size(), 20u);
    auto result = server.Explain(sql);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->generation.text, original_text);
    EXPECT_EQ(result->grade.grade, original_grade);
  }
}

TEST(DeploymentTest, RouterFileSurvivesRetrainComparison) {
  HtapConfig sys_config;
  sys_config.data_scale_factor = 0.0;
  HtapSystem system;
  ASSERT_TRUE(system.Init(sys_config).ok());
  HtapExplainer a(&system, ExplainerConfig{});
  ASSERT_TRUE(a.TrainRouter().ok());
  std::string path = ::testing::TempDir() + "/router2.bin";
  ASSERT_TRUE(a.router().Save(path).ok());

  // Loading into a router of matching architecture reproduces decisions.
  SmartRouter loaded(999);
  ASSERT_TRUE(loaded.Load(path).ok());
  auto query = system.Bind("SELECT c_name FROM customer WHERE c_custkey = 3");
  ASSERT_TRUE(query.ok());
  auto plans = system.PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  EXPECT_DOUBLE_EQ(a.router().ApProbability(*plans),
                   loaded.ApProbability(*plans));
  EXPECT_EQ(a.router().Embed(*plans), loaded.Embed(*plans));
}

}  // namespace
}  // namespace htapex
