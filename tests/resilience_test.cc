// Unit tests for the resilience layer: deterministic fault injection,
// circuit breaker state machine, the resilient LLM wrapper (deadlines,
// retries, backoff, budgets), output-garbling detection, the plan-diff
// bottom rung, and the observability guards they rely on.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/fault.h"
#include "llm/llm.h"
#include "llm/resilient_llm.h"
#include "obs/metrics.h"

namespace htapex {
namespace {

// ---------------------------------------------------------------- faults --

TEST(FaultInjectorTest, EmptySpecDisabled) {
  auto inj = FaultInjector::Parse("");
  ASSERT_TRUE(inj.ok()) << inj.status();
  EXPECT_FALSE(inj->enabled());
  EXPECT_FALSE(inj->Draw(kFaultLlmTimeout, 1, 0).fired);
  EXPECT_EQ(inj->Find(kFaultLlmTimeout), nullptr);
}

TEST(FaultInjectorTest, ParseAndRoundTrip) {
  auto inj = FaultInjector::Parse(
      "llm.transient_error:p=0.2;llm.timeout:p=0.1,lat=500", /*seed=*/7);
  ASSERT_TRUE(inj.ok()) << inj.status();
  EXPECT_TRUE(inj->enabled());
  EXPECT_EQ(inj->seed(), 7u);
  const FaultSpec* timeout = inj->Find(kFaultLlmTimeout);
  ASSERT_NE(timeout, nullptr);
  EXPECT_DOUBLE_EQ(timeout->probability, 0.1);
  EXPECT_DOUBLE_EQ(timeout->latency_ms, 500.0);
  // The normalized spec re-parses to the same configuration.
  auto again = FaultInjector::Parse(inj->ToString(), 7);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->ToString(), inj->ToString());
}

TEST(FaultInjectorTest, RejectsUnknownPointAndBadValues) {
  EXPECT_FALSE(FaultInjector::Parse("llm.typo:p=0.5").ok());
  EXPECT_FALSE(FaultInjector::Parse("llm.timeout:p=1.5").ok());
  EXPECT_FALSE(FaultInjector::Parse("llm.timeout:p=-0.1").ok());
  EXPECT_FALSE(FaultInjector::Parse("llm.timeout:p=abc").ok());
  EXPECT_FALSE(FaultInjector::Parse("llm.timeout").ok());
  EXPECT_FALSE(FaultInjector::Parse("llm.timeout:p=0.1,lat=-5").ok());
}

TEST(FaultInjectorTest, DrawsAreDeterministicPerCoordinates) {
  auto a = FaultInjector::Parse("llm.transient_error:p=0.5", 42);
  auto b = FaultInjector::Parse("llm.transient_error:p=0.5", 42);
  ASSERT_TRUE(a.ok() && b.ok());
  int fired = 0, differs_across_attempts = 0;
  for (uint64_t key = 0; key < 200; ++key) {
    FaultDraw d0 = a->Draw(kFaultLlmTransient, key, 0);
    // Identical coordinates -> identical outcome, in any injector instance
    // with the same spec and seed.
    EXPECT_EQ(d0.fired, b->Draw(kFaultLlmTransient, key, 0).fired);
    EXPECT_EQ(d0.fired, a->Draw(kFaultLlmTransient, key, 0).fired);
    if (d0.fired) ++fired;
    if (d0.fired != a->Draw(kFaultLlmTransient, key, 1).fired) {
      ++differs_across_attempts;
    }
  }
  // p=0.5 over 200 keys: both outcomes occur, and attempts are independent.
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 150);
  EXPECT_GT(differs_across_attempts, 0);
}

TEST(FaultInjectorTest, SeedChangesTheTranscript) {
  auto a = FaultInjector::Parse("llm.transient_error:p=0.5", 1);
  auto b = FaultInjector::Parse("llm.transient_error:p=0.5", 2);
  ASSERT_TRUE(a.ok() && b.ok());
  int differing = 0;
  for (uint64_t key = 0; key < 200; ++key) {
    if (a->Draw(kFaultLlmTransient, key, 0).fired !=
        b->Draw(kFaultLlmTransient, key, 0).fired) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, FireCountTracksFiredDraws) {
  auto inj = FaultInjector::Parse("llm.timeout:p=1", 42);
  ASSERT_TRUE(inj.ok());
  EXPECT_EQ(inj->FireCount(kFaultLlmTimeout), 0u);
  for (uint64_t key = 0; key < 5; ++key) {
    EXPECT_TRUE(inj->Draw(kFaultLlmTimeout, key, 0).fired);
  }
  EXPECT_EQ(inj->FireCount(kFaultLlmTimeout), 5u);
}

TEST(FaultInjectorTest, MixFaultSeedIsStableAndSensitive) {
  uint64_t h = MixFaultSeed(1, 2, 3, 4);
  EXPECT_EQ(h, MixFaultSeed(1, 2, 3, 4));
  EXPECT_NE(h, MixFaultSeed(1, 2, 3, 5));
  EXPECT_NE(h, MixFaultSeed(2, 2, 3, 4));
}

// --------------------------------------------------------------- breaker --

TEST(CircuitBreakerTest, OpensAfterThresholdAndShortCircuits) {
  ResilienceMetrics metrics;
  CircuitBreaker breaker(/*failure_threshold=*/3, /*cooldown_ms=*/1000.0,
                         &metrics);
  double now = 0.0;
  EXPECT_EQ(breaker.state(now), BreakerState::kClosed);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.AllowRequest(now));
    breaker.RecordFailure(now);
    now += 10.0;
  }
  EXPECT_EQ(breaker.state(now), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(now));
  EXPECT_EQ(metrics.breaker_opens.Value(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  ResilienceMetrics metrics;
  CircuitBreaker breaker(2, 1000.0, &metrics);
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(10.0);
  ASSERT_EQ(breaker.state(10.0), BreakerState::kOpen);
  // Cooldown not yet elapsed: still short-circuiting.
  EXPECT_FALSE(breaker.AllowRequest(500.0));
  // Cooldown elapsed: exactly one probe is admitted...
  EXPECT_TRUE(breaker.AllowRequest(1010.0 + 10.0));
  EXPECT_EQ(metrics.breaker_half_opens.Value(), 1u);
  // ...and concurrent callers keep short-circuiting while it is out.
  EXPECT_FALSE(breaker.AllowRequest(1025.0));
  // Failed probe: straight back to open for a fresh cooldown.
  breaker.RecordFailure(1030.0);
  EXPECT_EQ(breaker.state(1040.0), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(1040.0));
  EXPECT_EQ(metrics.breaker_opens.Value(), 2u);
  // After the second cooldown the breaker half-opens again and a
  // successful probe closes it.
  EXPECT_TRUE(breaker.AllowRequest(1030.0 + 1000.0 + 1.0));
  breaker.RecordSuccess(2040.0);
  EXPECT_EQ(breaker.state(2040.0), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(2040.0));
  EXPECT_EQ(metrics.breaker_closes.Value(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailures) {
  ResilienceMetrics metrics;
  CircuitBreaker breaker(3, 1000.0, &metrics);
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(1.0);
  breaker.RecordSuccess(2.0);
  breaker.RecordFailure(3.0);
  breaker.RecordFailure(4.0);
  EXPECT_EQ(breaker.state(5.0), BreakerState::kClosed);
  EXPECT_EQ(metrics.breaker_opens.Value(), 0u);
}

// ----------------------------------------------------------- resilience --

/// Minimal scripted model: fixed text and timing, counts calls.
class StubLlm : public SimulatedLlm {
 public:
  explicit StubLlm(double total_ms = 100.0, std::string text = "fine answer")
      : text_(std::move(text)) {
    persona_.name = "stub";
    timing_.thinking_ms = total_ms / 2;
    timing_.generation_ms = total_ms / 2;
  }
  GeneratedExplanation Explain(const Prompt&) const override {
    ++calls_;
    GeneratedExplanation out;
    out.text = text_;
    out.timing = timing_;
    return out;
  }
  const LlmPersona& persona() const override { return persona_; }
  int calls() const { return calls_; }

 private:
  std::string text_;
  LlmTiming timing_;
  LlmPersona persona_;
  mutable int calls_ = 0;
};

Prompt TestPrompt(const std::string& sql = "SELECT 1") {
  Prompt p;
  p.question_sql = sql;
  return p;
}

TEST(ResilientLlmTest, CleanCallPassesThrough) {
  ResilienceMetrics metrics;
  FaultInjector no_faults;
  auto stub = std::make_unique<StubLlm>();
  StubLlm* raw = stub.get();
  ResilientLlm llm(std::move(stub), "rag", ResiliencePolicy{}, &no_faults,
                   &metrics);
  auto out = llm.Explain(TestPrompt());
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->attempts, 1);
  EXPECT_DOUBLE_EQ(out->overhead_ms, 0.0);
  EXPECT_EQ(out->explanation.text, "fine answer");
  EXPECT_EQ(raw->calls(), 1);
  EXPECT_EQ(metrics.llm_retries.Value(), 0u);
}

TEST(ResilientLlmTest, TransientFaultsRetryThenSucceedOrExhaust) {
  // p=1 transient: every attempt fails, retries exhaust, breaker counts up.
  ResilienceMetrics metrics;
  auto inj = FaultInjector::Parse("llm.transient_error:p=1", 42);
  ASSERT_TRUE(inj.ok());
  ResiliencePolicy policy;
  policy.max_attempts = 3;
  ResilientLlm llm(std::make_unique<StubLlm>(), "rag", policy, &*inj,
                   &metrics);
  auto out = llm.Explain(TestPrompt());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(metrics.llm_attempts.Value(), 3u);
  EXPECT_EQ(metrics.llm_retries.Value(), 2u);
  EXPECT_EQ(metrics.llm_transient_errors.Value(), 3u);
}

TEST(ResilientLlmTest, TimeoutChargesTheFullDeadline) {
  ResilienceMetrics metrics;
  auto inj = FaultInjector::Parse("llm.timeout:p=1", 42);
  ASSERT_TRUE(inj.ok());
  ResiliencePolicy policy;
  policy.max_attempts = 1;
  policy.attempt_deadline_ms = 1234.0;
  ResilientLlm llm(std::make_unique<StubLlm>(), "rag", policy, &*inj,
                   &metrics);
  double spent = 0.0;
  auto out = llm.Explain(TestPrompt(), /*budget_ms=*/0.0, &spent);
  EXPECT_FALSE(out.ok());
  EXPECT_DOUBLE_EQ(spent, 1234.0);
  EXPECT_EQ(metrics.llm_timeouts.Value(), 1u);
}

TEST(ResilientLlmTest, OverlongGenerationAbandonedAtDeadline) {
  // The stub "generates" for 50 s against a 15 s per-attempt deadline.
  ResilienceMetrics metrics;
  FaultInjector no_faults;
  ResiliencePolicy policy;
  policy.max_attempts = 2;
  ResilientLlm llm(std::make_unique<StubLlm>(/*total_ms=*/50'000.0), "rag",
                   policy, &no_faults, &metrics);
  double spent = 0.0;
  auto out = llm.Explain(TestPrompt(), 0.0, &spent);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(metrics.llm_timeouts.Value(), 2u);
  // Each failed attempt pays exactly the deadline (plus jittered backoff).
  EXPECT_GE(spent, 2 * policy.attempt_deadline_ms);
}

TEST(ResilientLlmTest, GarbledOutputIsRetriedNotSurfaced) {
  ResilienceMetrics metrics;
  // Garble only attempt 0 is impossible to express via probability alone,
  // so use p=1 and verify the wrapper never surfaces a garbled text: with
  // every attempt garbled, the call must exhaust instead.
  auto inj = FaultInjector::Parse("llm.garbled_output:p=1", 42);
  ASSERT_TRUE(inj.ok());
  ResilientLlm llm(std::make_unique<StubLlm>(), "rag", ResiliencePolicy{},
                   &*inj, &metrics);
  auto out = llm.Explain(TestPrompt());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(metrics.llm_garbled.Value(), 3u);
}

TEST(ResilientLlmTest, BudgetExhaustionIsTyped) {
  ResilienceMetrics metrics;
  auto inj = FaultInjector::Parse("llm.timeout:p=1", 42);
  ASSERT_TRUE(inj.ok());
  ResiliencePolicy policy;
  policy.attempt_deadline_ms = 1000.0;
  ResilientLlm llm(std::make_unique<StubLlm>(), "rag", policy, &*inj,
                   &metrics);
  // First attempt burns 1000 ms > budget; the second attempt is refused.
  auto out = llm.Explain(TestPrompt(), /*budget_ms=*/500.0);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(metrics.budget_exhausted.Value(), 1u);
}

TEST(ResilientLlmTest, BreakerOpensThenRecoversAfterCooldown) {
  ResilienceMetrics metrics;
  auto inj = FaultInjector::Parse("llm.transient_error:p=1", 42);
  ASSERT_TRUE(inj.ok());
  ResiliencePolicy policy;
  policy.max_attempts = 1;
  policy.breaker_failure_threshold = 2;
  policy.breaker_cooldown_ms = 10'000.0;
  policy.interarrival_ms = 1000.0;
  ResilientLlm llm(std::make_unique<StubLlm>(), "rag", policy, &*inj,
                   &metrics);
  EXPECT_FALSE(llm.Explain(TestPrompt("q1")).ok());
  EXPECT_FALSE(llm.Explain(TestPrompt("q2")).ok());
  EXPECT_EQ(llm.breaker_state(), BreakerState::kOpen);
  // While open, calls short-circuit (no inner attempts)...
  uint64_t attempts_before = metrics.llm_attempts.Value();
  auto rejected = llm.Explain(TestPrompt("q3"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(metrics.llm_attempts.Value(), attempts_before);
  EXPECT_GT(metrics.breaker_short_circuits.Value(), 0u);
  // ...but each arrival still advances the simulated clock, so the
  // cooldown eventually elapses and a probe is admitted again.
  for (int i = 0; i < 40 && metrics.breaker_half_opens.Value() == 0; ++i) {
    (void)llm.Explain(TestPrompt("q" + std::to_string(4 + i)));
  }
  EXPECT_EQ(metrics.breaker_half_opens.Value(), 1u);
  EXPECT_GE(metrics.breaker_opens.Value(), 2u);  // probe failed -> reopened
}

TEST(ResilientLlmTest, TranscriptIsDeterministic) {
  // Two independent wrappers over the same spec + seed must burn the same
  // simulated time, attempt-for-attempt, for the same request.
  auto inj1 =
      FaultInjector::Parse("llm.transient_error:p=0.6;llm.timeout:p=0.3", 1337);
  auto inj2 =
      FaultInjector::Parse("llm.transient_error:p=0.6;llm.timeout:p=0.3", 1337);
  ASSERT_TRUE(inj1.ok() && inj2.ok());
  ResiliencePolicy policy;
  policy.seed = 1337;
  ResilienceMetrics m1, m2;
  auto llm1 = std::make_unique<ResilientLlm>(std::make_unique<StubLlm>(),
                                             "rag", policy, &*inj1, &m1);
  auto llm2 = std::make_unique<ResilientLlm>(std::make_unique<StubLlm>(),
                                             "rag", policy, &*inj2, &m2);
  for (int q = 0; q < 32; ++q) {
    Prompt p = TestPrompt("SELECT " + std::to_string(q));
    double spent1 = 0.0, spent2 = 0.0;
    auto r1 = llm1->Explain(p, 0.0, &spent1);
    auto r2 = llm2->Explain(p, 0.0, &spent2);
    EXPECT_EQ(r1.ok(), r2.ok()) << q;
    EXPECT_DOUBLE_EQ(spent1, spent2) << q;
    if (r1.ok()) EXPECT_EQ(r1->attempts, r2->attempts) << q;
  }
  EXPECT_EQ(m1.llm_attempts.Value(), m2.llm_attempts.Value());
  EXPECT_EQ(m1.llm_retries.Value(), m2.llm_retries.Value());
  EXPECT_EQ(m1.llm_timeouts.Value(), m2.llm_timeouts.Value());
}

// ---------------------------------------------------------------- output --

TEST(GarbleTest, GarbledTextIsDetectedCleanTextIsNot) {
  EXPECT_FALSE(LooksGarbled("The TP engine executed this query faster."));
  EXPECT_TRUE(LooksGarbled(""));
  EXPECT_TRUE(LooksGarbled(std::string("ok\x02ok", 6)));
  std::string garbled = GarbleText(
      "A long enough explanation text that corruption will certainly touch "
      "at least one of its many characters.",
      /*seed=*/99);
  EXPECT_TRUE(LooksGarbled(garbled));
  // Deterministic for a given seed.
  EXPECT_EQ(garbled,
            GarbleText("A long enough explanation text that corruption will "
                       "certainly touch at least one of its many characters.",
                       99));
}

TEST(PlanDiffTest, UnreadablePlansYieldNone) {
  Prompt p = TestPrompt();
  p.question_tp_plan_json = "not json";
  p.question_ap_plan_json = "also not json";
  GeneratedExplanation out = MakePlanDiffExplanation(p);
  EXPECT_TRUE(out.claims.is_none);
  EXPECT_EQ(out.text, "None");
}

// ----------------------------------------------------------- metrics fix --

TEST(MetricsGuardTest, EmptyHistogramSnapshotsAllZero) {
  LatencyHistogram h;
  LatencyHistogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.min_ms, 0.0);  // not UINT64_MAX nanoseconds
  EXPECT_DOUBLE_EQ(s.max_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.p95_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_ms(), 0.0);
}

TEST(MetricsGuardTest, CounterResetZeroes) {
  Counter c;
  c.Inc(5);
  EXPECT_EQ(c.Value(), 5u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(MetricsGuardTest, ResilienceStatsToStringMentionsCounts) {
  ResilienceMetrics metrics;
  metrics.llm_retries.Inc(3);
  metrics.breaker_opens.Inc();
  ResilienceStats stats = SnapshotResilience(metrics);
  EXPECT_EQ(stats.llm_retries, 3u);
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_NE(stats.ToString().find("retries"), std::string::npos);
}

}  // namespace
}  // namespace htapex
