#include <gtest/gtest.h>

#include <map>

#include "engine/htap_system.h"
#include "workload/query_generator.h"

namespace htapex {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static HtapSystem* system_;
};

HtapSystem* WorkloadTest::system_ = nullptr;

/// Every pattern/variant must produce SQL that parses, binds, and plans on
/// both engines — parameterized over all patterns.
class PatternTest : public WorkloadTest,
                    public ::testing::WithParamInterface<QueryPattern> {};

TEST_P(PatternTest, GeneratesValidQueries) {
  QueryGenerator gen(100.0, 11);
  for (int i = 0; i < 12; ++i) {
    GeneratedQuery q = gen.Generate(GetParam());
    auto bound = system_->Bind(q.sql);
    ASSERT_TRUE(bound.ok()) << q.sql << ": " << bound.status();
    auto plans = system_->PlanBoth(*bound);
    ASSERT_TRUE(plans.ok()) << q.sql << ": " << plans.status();
    EXPECT_GT(plans->tp.root->TreeSize(), 0);
    EXPECT_GT(plans->ap.root->TreeSize(), 0);
  }
}

TEST_P(PatternTest, VariantsAreDeterministic) {
  QueryGenerator a(100.0, 5), b(100.0, 5);
  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(a.Generate(GetParam(), v).sql, b.Generate(GetParam(), v).sql);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternTest, ::testing::ValuesIn(AllQueryPatterns()),
    [](const ::testing::TestParamInfo<QueryPattern>& info) {
      return QueryPatternName(info.param);
    });

TEST_F(WorkloadTest, MixCoversAllPatterns) {
  QueryGenerator gen(100.0, 77);
  auto queries = gen.GenerateMix(400);
  std::map<QueryPattern, int> counts;
  for (const auto& q : queries) counts[q.pattern]++;
  for (QueryPattern p : AllQueryPatterns()) {
    EXPECT_GT(counts[p], 5) << QueryPatternName(p);
  }
}

TEST_F(WorkloadTest, MixProducesBothEngineLabels) {
  QueryGenerator gen(100.0, 78);
  int tp = 0, ap = 0;
  for (const auto& gq : gen.GenerateMix(120)) {
    auto bound = system_->Bind(gq.sql);
    ASSERT_TRUE(bound.ok()) << gq.sql;
    auto plans = system_->PlanBoth(*bound);
    ASSERT_TRUE(plans.ok());
    if (system_->LatencyMs(plans->tp) <= system_->LatencyMs(plans->ap)) {
      ++tp;
    } else {
      ++ap;
    }
  }
  EXPECT_GT(tp, 20);
  EXPECT_GT(ap, 20);
}

TEST_F(WorkloadTest, PatternsMatchExpectedWinner) {
  QueryGenerator gen(100.0, 79);
  // Point lookups favor TP; function-predicate joins favor AP.
  for (int i = 0; i < 8; ++i) {
    auto q = gen.Generate(QueryPattern::kPointLookup);
    auto bound = system_->Bind(q.sql);
    auto plans = system_->PlanBoth(*bound);
    EXPECT_LE(system_->LatencyMs(plans->tp), system_->LatencyMs(plans->ap))
        << q.sql;
  }
  for (int i = 0; i < 8; ++i) {
    auto q = gen.Generate(QueryPattern::kJoinFunctionPred);
    auto bound = system_->Bind(q.sql);
    auto plans = system_->PlanBoth(*bound);
    EXPECT_GT(system_->LatencyMs(plans->tp), system_->LatencyMs(plans->ap))
        << q.sql;
  }
}

TEST_F(WorkloadTest, DifferentSeedsDifferentQueries) {
  QueryGenerator a(100.0, 1), b(100.0, 2);
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Generate(QueryPattern::kJoinLarge).sql ==
        b.Generate(QueryPattern::kJoinLarge).sql) {
      ++same;
    }
  }
  EXPECT_LT(same, 10);
}

}  // namespace
}  // namespace htapex
