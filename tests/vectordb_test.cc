#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "vectordb/hnsw.h"
#include "vectordb/knowledge_base.h"
#include "vectordb/vector_store.h"

namespace htapex {
namespace {

std::vector<double> Vec(std::initializer_list<double> v) { return v; }

TEST(VectorStoreTest, AddSearchRemove) {
  VectorStore store(2);
  ASSERT_TRUE(store.Add(Vec({0, 0})).ok());
  ASSERT_TRUE(store.Add(Vec({1, 0})).ok());
  ASSERT_TRUE(store.Add(Vec({5, 5})).ok());
  EXPECT_EQ(store.size(), 3u);
  auto hits = store.Search(Vec({0.9, 0.1}), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1);
  EXPECT_EQ(hits[1].id, 0);
  ASSERT_TRUE(store.Remove(1).ok());
  EXPECT_EQ(store.size(), 2u);
  hits = store.Search(Vec({0.9, 0.1}), 2);
  EXPECT_EQ(hits[0].id, 0);
  EXPECT_EQ(store.Remove(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Get(1), nullptr);
  ASSERT_NE(store.Get(0), nullptr);
}

TEST(VectorStoreTest, DimensionMismatchRejected) {
  VectorStore store(3);
  EXPECT_FALSE(store.Add(Vec({1, 2})).ok());
}

TEST(VectorStoreTest, KLargerThanStore) {
  VectorStore store(1);
  store.Add(Vec({1})).status();
  auto hits = store.Search(Vec({0}), 10);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(HnswTest, ExactOnSmallSets) {
  // With few points HNSW degenerates to exact search.
  HnswIndex index(2);
  for (double x : {0.0, 1.0, 2.0, 3.0, 10.0}) {
    ASSERT_TRUE(index.Add(Vec({x, 0})).ok());
  }
  auto hits = index.Search(Vec({2.2, 0}), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 2);
  EXPECT_EQ(hits[1].id, 3);
}

TEST(HnswTest, HighRecallVsExact) {
  constexpr int kDim = 16;
  Rng rng(5);
  VectorStore exact(kDim);
  HnswIndex hnsw(kDim);
  auto random_vec = [&]() {
    std::vector<double> v(kDim);
    for (double& x : v) x = rng.UniformReal(0, 10);
    return v;
  };
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> v = random_vec();
    exact.Add(v).status();
    hnsw.Add(std::move(v)).status();
  }
  int hits = 0, total = 0;
  for (int q = 0; q < 50; ++q) {
    std::vector<double> query = random_vec();
    auto truth = exact.Search(query, 5);
    auto approx = hnsw.Search(query, 5);
    std::set<int> truth_ids;
    for (const auto& h : truth) truth_ids.insert(h.id);
    for (const auto& h : approx) {
      if (truth_ids.count(h.id) > 0) ++hits;
    }
    total += 5;
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.9);
}

TEST(HnswTest, WrongDimensionQueryReturnsEmpty) {
  // Regression: Search used to skip the dimension check that Add enforces,
  // so SquaredL2 read past the end of every stored vector.
  HnswIndex index(3);
  ASSERT_TRUE(index.Add(Vec({1, 2, 3})).ok());
  ASSERT_TRUE(index.Add(Vec({4, 5, 6})).ok());
  EXPECT_TRUE(index.Search(Vec({1, 2}), 2).empty());        // too short
  EXPECT_TRUE(index.Search(Vec({1, 2, 3, 4}), 2).empty());  // too long
  EXPECT_EQ(index.Search(Vec({1, 2, 3}), 2).size(), 2u);    // exact dim ok
}

TEST(HnswTest, NonPositiveKAndTinyEfSearchClamped) {
  // Regression: hits.resize(k) with negative k wrapped to a huge size_t,
  // and ef_search < k silently truncated results below k.
  HnswIndex::Options opts;
  opts.ef_search = 1;  // smaller than the k we ask for
  HnswIndex index(2, opts);
  for (double x : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    ASSERT_TRUE(index.Add(Vec({x, 0})).ok());
  }
  EXPECT_TRUE(index.Search(Vec({0, 0}), 0).empty());
  EXPECT_TRUE(index.Search(Vec({0, 0}), -3).empty());
  EXPECT_EQ(index.Search(Vec({0, 0}), 3).size(), 3u);  // ef clamped up to k
}

TEST(HnswTest, AdversarialOptionsStillSearchCorrectly) {
  // Regression: max_neighbors = 1 made RandomLevel compute 1/ln(1) — a
  // division by zero whose huge/NaN level then sized unbounded neighbor
  // vectors. Options are now clamped at construction (M >= 2,
  // ef_construction >= 1), so the most hostile configuration must behave
  // like a small-but-valid index: every insert succeeds, duplicates are
  // fine, k > n returns n, and recall against an exact scan stays usable.
  constexpr int kDim = 8;
  HnswIndex::Options opts;
  opts.max_neighbors = 1;   // would divide by zero before the clamp
  opts.ef_construction = 0; // would select zero candidates per insert
  opts.ef_search = 0;       // clamped up to k per Search call
  HnswIndex hnsw(kDim, opts);
  VectorStore exact(kDim);
  Rng rng(11);
  auto random_vec = [&]() {
    std::vector<double> v(kDim);
    for (double& x : v) x = rng.UniformReal(0, 10);
    return v;
  };
  for (int i = 0; i < 200; ++i) {
    std::vector<double> v = random_vec();
    ASSERT_TRUE(exact.Add(v).ok());
    ASSERT_TRUE(hnsw.Add(std::move(v)).ok());
  }
  // Duplicate vectors must insert cleanly too.
  std::vector<double> dup(kDim, 1.0);
  ASSERT_TRUE(hnsw.Add(dup).ok());
  ASSERT_TRUE(hnsw.Add(dup).ok());
  ASSERT_TRUE(exact.Add(dup).ok());
  ASSERT_TRUE(exact.Add(dup).ok());
  EXPECT_EQ(hnsw.size(), 202u);

  // k far beyond the index size returns (nearly) everything, sorted. HNSW
  // never guarantees full reachability — back-link pruning can strand a
  // few nodes — but at M = 2 with the diversity-heuristic neighbour
  // selection the base layer stays essentially connected (the fixed seeds
  // make this deterministic: 195 of 202 reachable).
  auto all = hnsw.Search(dup, 1000);
  ASSERT_GE(all.size(), 190u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i].distance, all[i - 1].distance);
  }
  EXPECT_DOUBLE_EQ(all[0].distance, 0.0);  // the duplicates themselves

  // Recall vs the exact scan. M clamps to 2 — a deliberately thin graph —
  // so the bar is "clearly better than chance", not the >= 90% the default
  // options hit (HighRecallVsExact covers that).
  int hits = 0, total = 0;
  for (int q = 0; q < 50; ++q) {
    std::vector<double> query = random_vec();
    auto truth = exact.Search(query, 5);
    auto approx = hnsw.Search(query, 5);
    ASSERT_EQ(approx.size(), 5u);
    std::set<int> truth_ids;
    for (const auto& h : truth) truth_ids.insert(h.id);
    for (const auto& h : approx) {
      if (truth_ids.count(h.id) > 0) ++hits;
    }
    total += 5;
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.5);
}

TEST(VectorStoreTest, WrongDimensionOrBadKReturnsEmpty) {
  VectorStore store(3);
  ASSERT_TRUE(store.Add(Vec({1, 2, 3})).ok());
  EXPECT_TRUE(store.Search(Vec({1, 2, 3, 4}), 1).empty());
  EXPECT_TRUE(store.Search(Vec({1, 2}), 1).empty());
  EXPECT_TRUE(store.Search(Vec({1, 2, 3}), 0).empty());
  EXPECT_TRUE(store.Search(Vec({1, 2, 3}), -1).empty());
}

TEST(HnswTest, ResultsSortedByDistance) {
  HnswIndex index(2);
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    index.Add(Vec({rng.UniformReal(0, 1), rng.UniformReal(0, 1)})).status();
  }
  auto hits = index.Search(Vec({0.5, 0.5}), 10);
  ASSERT_EQ(hits.size(), 10u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i].distance, hits[i - 1].distance);
  }
}

KbEntry MakeEntry(std::vector<double> embedding, std::string sql,
                  EngineKind faster) {
  KbEntry e;
  e.sql = std::move(sql);
  e.embedding = std::move(embedding);
  e.tp_plan_json = "{'Node Type': 'Table Scan'}";
  e.ap_plan_json = "{'Node Type': 'Columnar scan'}";
  e.faster = faster;
  e.tp_latency_ms = 100;
  e.ap_latency_ms = 10;
  e.expert_explanation = "AP is faster.";
  return e;
}

TEST(KnowledgeBaseTest, InsertRetrieve) {
  KnowledgeBase kb(2);
  ASSERT_TRUE(kb.Insert(MakeEntry(Vec({0, 0}), "q0", EngineKind::kAp)).ok());
  ASSERT_TRUE(kb.Insert(MakeEntry(Vec({1, 1}), "q1", EngineKind::kTp)).ok());
  ASSERT_TRUE(kb.Insert(MakeEntry(Vec({5, 5}), "q2", EngineKind::kAp)).ok());
  EXPECT_EQ(kb.size(), 3u);
  auto hits = kb.Retrieve(Vec({0.8, 0.8}), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->sql, "q1");
  EXPECT_EQ(hits[1]->sql, "q0");
}

TEST(KnowledgeBaseTest, DimensionMismatchRejected) {
  KnowledgeBase kb(4);
  EXPECT_FALSE(kb.Insert(MakeEntry(Vec({1, 2}), "q", EngineKind::kAp)).ok());
}

TEST(KnowledgeBaseTest, CorrectionAndExpiry) {
  KnowledgeBase kb(2);
  auto id0 = kb.Insert(MakeEntry(Vec({0, 0}), "q0", EngineKind::kAp));
  auto id1 = kb.Insert(MakeEntry(Vec({1, 1}), "q1", EngineKind::kAp));
  ASSERT_TRUE(id0.ok() && id1.ok());
  ASSERT_TRUE(kb.CorrectExplanation(*id0, "corrected text").ok());
  EXPECT_EQ(kb.Get(*id0)->expert_explanation, "corrected text");
  ASSERT_TRUE(kb.Expire(*id1).ok());
  EXPECT_EQ(kb.size(), 1u);
  EXPECT_EQ(kb.Get(*id1), nullptr);
  EXPECT_FALSE(kb.Expire(*id1).ok());
  EXPECT_FALSE(kb.CorrectExplanation(*id1, "x").ok());
  auto hits = kb.Retrieve(Vec({1, 1}), 2);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->sql, "q0");
}

TEST(KnowledgeBaseTest, SaveLoadRoundTrip) {
  KnowledgeBase kb(2);
  kb.Insert(MakeEntry(Vec({0.5, 1.5}), "query one", EngineKind::kAp)).status();
  kb.Insert(MakeEntry(Vec({2.5, 3.5}), "query 'two'", EngineKind::kTp)).status();
  std::string path = ::testing::TempDir() + "/kb.json";
  ASSERT_TRUE(kb.SaveJson(path).ok());
  KnowledgeBase loaded(2);
  ASSERT_TRUE(loaded.LoadJson(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  auto hits = loaded.Retrieve(Vec({0.5, 1.5}), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->sql, "query one");
  EXPECT_EQ(hits[0]->faster, EngineKind::kAp);
  EXPECT_DOUBLE_EQ(hits[0]->tp_latency_ms, 100);
  // Dimension mismatch on load.
  KnowledgeBase wrong(3);
  EXPECT_FALSE(wrong.LoadJson(path).ok());
}

TEST(KnowledgeBaseTest, WrongDimensionOrBadKRetrieveReturnsEmpty) {
  for (auto mode :
       {KnowledgeBase::IndexMode::kExact, KnowledgeBase::IndexMode::kHnsw}) {
    KnowledgeBase kb(2, mode);
    ASSERT_TRUE(kb.Insert(MakeEntry(Vec({0, 0}), "q0", EngineKind::kAp)).ok());
    EXPECT_TRUE(kb.Retrieve(Vec({0, 0, 0}), 1).empty());
    EXPECT_TRUE(kb.Retrieve(Vec({0}), 1).empty());
    EXPECT_TRUE(kb.Retrieve(Vec({0, 0}), 0).empty());
    EXPECT_TRUE(kb.Retrieve(Vec({0, 0}), -2).empty());
    EXPECT_EQ(kb.Retrieve(Vec({0, 0}), 1).size(), 1u);
  }
}

TEST(KnowledgeBaseTest, HnswModeAgreesWithExact) {
  KnowledgeBase exact(4, KnowledgeBase::IndexMode::kExact);
  KnowledgeBase hnsw(4, KnowledgeBase::IndexMode::kHnsw);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> v(4);
    for (double& x : v) x = rng.UniformReal(0, 10);
    exact.Insert(MakeEntry(v, "q" + std::to_string(i), EngineKind::kAp)).status();
    hnsw.Insert(MakeEntry(v, "q" + std::to_string(i), EngineKind::kAp)).status();
  }
  int agree = 0;
  for (int q = 0; q < 20; ++q) {
    std::vector<double> v(4);
    for (double& x : v) x = rng.UniformReal(0, 10);
    auto a = exact.Retrieve(v, 1);
    auto b = hnsw.Retrieve(v, 1);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    if (a[0]->sql == b[0]->sql) ++agree;
  }
  EXPECT_GE(agree, 18);  // HNSW is approximate but should rarely differ
}

}  // namespace
}  // namespace htapex
