#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/tpch.h"
#include "catalog/value.h"

namespace htapex {
namespace {

TEST(ValueTest, CompareNumbers) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("x").Compare(Value::Str("x")), 0);
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, HashEqualValuesEqualHashes) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::Str("egypt").Hash(), Value::Str("egypt").Hash());
  EXPECT_NE(Value::Str("egypt").Hash(), Value::Str("france").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("p").ToString(), "'p'");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(DateTest, RoundTrip) {
  int64_t days = 0;
  ASSERT_TRUE(ParseDate("1995-03-15", &days));
  EXPECT_EQ(FormatDate(days), "1995-03-15");
  ASSERT_TRUE(ParseDate("1992-01-01", &days));
  EXPECT_EQ(FormatDate(days), "1992-01-01");
  ASSERT_TRUE(ParseDate("2000-02-29", &days));  // leap year
  EXPECT_EQ(FormatDate(days), "2000-02-29");
}

TEST(DateTest, RejectsBadDates) {
  int64_t days = 0;
  EXPECT_FALSE(ParseDate("1999-02-29", &days));
  EXPECT_FALSE(ParseDate("1999-13-01", &days));
  EXPECT_FALSE(ParseDate("hello", &days));
}

TEST(DateTest, Ordering) {
  int64_t a = 0, b = 0;
  ASSERT_TRUE(ParseDate("1994-01-01", &a));
  ASSERT_TRUE(ParseDate("1994-06-30", &b));
  EXPECT_LT(a, b);
  EXPECT_EQ(b - a, 180);
}

TEST(CatalogTest, AddAndLookupTable) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(TableSchema("t", {{"a", DataType::kInt}}, {"a"})).ok());
  EXPECT_TRUE(cat.HasTable("t"));
  auto t = cat.GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_columns(), 1u);
  EXPECT_FALSE(cat.GetTable("missing").ok());
  EXPECT_EQ(cat.AddTable(TableSchema("t", {{"a", DataType::kInt}}, {"a"})).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, IndexManagement) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(TableSchema(
                               "t", {{"a", DataType::kInt}, {"b", DataType::kString}}, {"a"}))
                  .ok());
  IndexDef idx{"i_b", "t", {"b"}, false, false};
  ASSERT_TRUE(cat.AddIndex(idx).ok());
  EXPECT_NE(cat.FindIndexOnColumn("t", "b"), nullptr);
  EXPECT_EQ(cat.FindIndexOnColumn("t", "a"), nullptr);
  EXPECT_EQ(cat.AddIndex(idx).code(), StatusCode::kAlreadyExists);
  IndexDef bad{"i_c", "t", {"no_such"}, false, false};
  EXPECT_EQ(cat.AddIndex(bad).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(cat.DropIndex("i_b").ok());
  EXPECT_EQ(cat.FindIndexOnColumn("t", "b"), nullptr);
  EXPECT_EQ(cat.DropIndex("i_b").code(), StatusCode::kNotFound);
}

class TpchCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(tpch::BuildCatalog(&catalog_, 100.0).ok());
  }
  Catalog catalog_;
};

TEST_F(TpchCatalogTest, AllTablesPresent) {
  for (const char* t : {"region", "nation", "supplier", "customer", "part",
                        "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(catalog_.HasTable(t)) << t;
  }
  EXPECT_EQ(catalog_.TableNames().size(), 8u);
}

TEST_F(TpchCatalogTest, RowCountsScale) {
  EXPECT_EQ(catalog_.RowCount("nation"), 25);
  EXPECT_EQ(catalog_.RowCount("region"), 5);
  EXPECT_EQ(catalog_.RowCount("customer"), 15'000'000);
  EXPECT_EQ(catalog_.RowCount("orders"), 150'000'000);
  EXPECT_GT(catalog_.RowCount("lineitem"), 600'000'000);
}

TEST_F(TpchCatalogTest, PrimaryAndForeignKeyIndexes) {
  const IndexDef* pk = catalog_.FindIndexOnColumn("customer", "c_custkey");
  ASSERT_NE(pk, nullptr);
  EXPECT_TRUE(pk->is_primary);
  EXPECT_TRUE(pk->unique);
  const IndexDef* fk = catalog_.FindIndexOnColumn("orders", "o_custkey");
  ASSERT_NE(fk, nullptr);
  EXPECT_FALSE(fk->is_primary);
  // No index on c_phone by default (the paper adds one as user context).
  EXPECT_EQ(catalog_.FindIndexOnColumn("customer", "c_phone"), nullptr);
}

TEST_F(TpchCatalogTest, StatsParallelToSchema) {
  for (const auto& name : catalog_.TableNames()) {
    auto schema = catalog_.GetTable(name);
    auto stats = catalog_.GetStats(name);
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ((*schema)->num_columns(), (*stats)->columns.size()) << name;
    EXPECT_GT((*stats)->avg_row_bytes, 0) << name;
  }
}

TEST_F(TpchCatalogTest, ColumnStatDomains) {
  auto stats = catalog_.GetStats("orders");
  ASSERT_TRUE(stats.ok());
  auto schema = catalog_.GetTable("orders");
  int status_idx = (*schema)->ColumnIndex("o_orderstatus");
  ASSERT_GE(status_idx, 0);
  EXPECT_EQ((*stats)->columns[status_idx].ndv, 3);
  int date_idx = (*schema)->ColumnIndex("o_orderdate");
  ASSERT_GE(date_idx, 0);
  EXPECT_EQ((*stats)->columns[date_idx].min.AsInt(), tpch::kMinOrderDate);
  EXPECT_EQ((*stats)->columns[date_idx].max.AsInt(), tpch::kMaxOrderDate);
}

TEST(TpchScaleTest, FixedTablesDoNotScale) {
  EXPECT_EQ(tpch::RowCountAtScale("nation", 100.0), 25);
  EXPECT_EQ(tpch::RowCountAtScale("region", 0.01), 5);
  EXPECT_EQ(tpch::RowCountAtScale("customer", 0.01), 1500);
}

TEST(TpchScaleTest, RejectsNonPositiveScale) {
  Catalog cat;
  EXPECT_FALSE(tpch::BuildCatalog(&cat, 0.0).ok());
  EXPECT_FALSE(tpch::BuildCatalog(&cat, -1.0).ok());
}

}  // namespace
}  // namespace htapex
