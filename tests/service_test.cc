#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/htap_explainer.h"
#include "obs/metrics.h"
#include "service/explain_cache.h"
#include "service/explain_service.h"
#include "workload/query_generator.h"

namespace htapex {
namespace {

/// Shared expensive fixture: plan-only system + trained explainer with the
/// default 20-entry knowledge base (HNSW-indexed, so concurrent corrections
/// exercise the graph insert path too).
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
    ExplainerConfig ec;
    ec.kb_index = KnowledgeBase::IndexMode::kHnsw;
    explainer_ = new HtapExplainer(system_, ec);
    auto train = explainer_->TrainRouter();
    ASSERT_TRUE(train.ok()) << train.status();
    ASSERT_TRUE(explainer_->BuildDefaultKnowledgeBase().ok());
  }
  static void TearDownTestSuite() {
    delete explainer_;
    delete system_;
    explainer_ = nullptr;
    system_ = nullptr;
  }
  static HtapSystem* system_;
  static HtapExplainer* explainer_;
};

HtapSystem* ServiceTest::system_ = nullptr;
HtapExplainer* ServiceTest::explainer_ = nullptr;

TEST_F(ServiceTest, SyncExplainMatchesDirectExplain) {
  const std::string sql = "SELECT c_name FROM customer WHERE c_custkey = 42";
  ExplainService service(explainer_, ServiceConfig{});
  auto via_service = service.ExplainSync(sql);
  ASSERT_TRUE(via_service.ok()) << via_service.status();
  auto direct = explainer_->Explain(sql);
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_EQ(via_service->outcome.faster, direct->outcome.faster);
  EXPECT_EQ(via_service->generation.text, direct->generation.text);
  EXPECT_EQ(via_service->grade.grade, direct->grade.grade);
  EXPECT_FALSE(via_service->from_cache);
}

TEST_F(ServiceTest, RepeatedQueryServedFromCacheWithHonestTiming) {
  ExplainService service(explainer_, ServiceConfig{});
  const std::string sql =
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10";
  auto miss = service.ExplainSync(sql);
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->from_cache);
  EXPECT_GT(miss->generation.timing.total_ms(), 0.0);

  auto hit = service.ExplainSync(sql);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(hit->generation.text, miss->generation.text);
  EXPECT_EQ(hit->grade.grade, miss->grade.grade);
  // Honest hit timing: the probe is charged, the skipped search/generation
  // are not, so a hit is dramatically cheaper end to end.
  EXPECT_GE(hit->cache_lookup_ms, 0.0);
  EXPECT_EQ(hit->generation.timing.total_ms(), 0.0);
  EXPECT_EQ(hit->retrieval.search_ms, 0.0);
  EXPECT_LT(hit->end_to_end_ms(), miss->end_to_end_ms());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.end_to_end.count, 2u);
}

TEST_F(ServiceTest, CacheDisabledNeverHits) {
  ServiceConfig config;
  config.cache_enabled = false;
  ExplainService service(explainer_, config);
  const std::string sql = "SELECT c_name FROM customer WHERE c_custkey = 7";
  for (int i = 0; i < 2; ++i) {
    auto r = service.ExplainSync(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->from_cache);
  }
  EXPECT_EQ(service.Stats().cache_hits, 0u);
}

TEST_F(ServiceTest, InvalidSqlReportsErrorNotCrash) {
  ExplainService service(explainer_, ServiceConfig{});
  auto r = service.ExplainSync("SELECT nonsense FROM nowhere");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(service.Stats().errors, 1u);
}

TEST_F(ServiceTest, ConcurrentExplainAndCorrectionLosesNothing) {
  // N explain threads hammer a shared workload while M correction threads
  // insert expert corrections; the reader/writer locking must neither lose
  // a KB insert nor corrupt a retrieval.
  constexpr int kExplainThreads = 4;
  constexpr int kQueriesPerThread = 12;
  constexpr int kCorrections = 8;

  ServiceConfig config;
  config.num_workers = 4;
  ExplainService service(explainer_, config);

  // Deterministic workload: few distinct queries, many repeats, so the
  // cache must hit.
  QueryGenerator gen(system_->config().stats_scale_factor, /*seed=*/0x5eed);
  std::vector<std::string> sqls;
  for (const GeneratedQuery& q : gen.GenerateMix(6)) sqls.push_back(q.sql);

  // Corrections come from fresh, distinct queries (distinct embeddings).
  QueryGenerator correction_gen(system_->config().stats_scale_factor,
                                /*seed=*/0xfeedb);
  std::vector<std::string> correction_sqls;
  for (const GeneratedQuery& q : correction_gen.GenerateMix(kCorrections)) {
    correction_sqls.push_back(q.sql);
  }

  const size_t kb_before = explainer_->knowledge_base().size();
  std::atomic<int> explain_ok{0};
  std::atomic<int> correction_ok{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kExplainThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const std::string& sql =
            sqls[static_cast<size_t>((t + i) % sqls.size())];
        auto r = service.ExplainSync(sql);
        if (r.ok()) explain_ok.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (const std::string& sql : correction_sqls) {
      auto r = service.ExplainSync(sql);
      if (!r.ok()) continue;
      if (service.IncorporateCorrection(*r).ok()) correction_ok.fetch_add(1);
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(explain_ok.load(), kExplainThreads * kQueriesPerThread);
  EXPECT_EQ(correction_ok.load(), kCorrections);
  // No lost KB entries: every successful correction is present.
  EXPECT_EQ(explainer_->knowledge_base().size(),
            kb_before + static_cast<size_t>(correction_ok.load()));

  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.cache_hits, 0u) << stats.ToString();
  EXPECT_EQ(stats.errors, 0u) << stats.ToString();
  EXPECT_EQ(stats.completed,
            static_cast<uint64_t>(kExplainThreads * kQueriesPerThread +
                                  kCorrections));
  EXPECT_EQ(stats.kb_inserts, static_cast<uint64_t>(kCorrections));
}

TEST_F(ServiceTest, SubmitManyFuturesAllResolve) {
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 4;  // forces Submit to block on backpressure
  ExplainService service(explainer_, config);
  std::vector<std::future<Result<ExplainResult>>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(service.Submit(
        "SELECT c_name FROM customer WHERE c_custkey = " +
        std::to_string(i % 3)));
  }
  int ok = 0;
  for (auto& f : futures) {
    if (f.get().ok()) ++ok;
  }
  EXPECT_EQ(ok, 24);
}

TEST_F(ServiceTest, SubmitAfterShutdownFailsCleanly) {
  ExplainService service(explainer_, ServiceConfig{});
  service.Shutdown();
  auto r = service.Submit("SELECT c_name FROM customer WHERE c_custkey = 1")
               .get();
  EXPECT_FALSE(r.ok());
}

TEST(ExplainCacheTest, QuantizedKeyAndThreshold) {
  ShardedExplainCache::Options opts;
  opts.quant_step = 0.1;
  opts.max_sq_distance = 1e-4;
  ShardedExplainCache cache(opts);

  auto entry = std::make_shared<CachedExplanation>();
  entry->embedding = {1.0, 2.0, 3.0};
  entry->generation.text = "cached";
  cache.Insert(entry);

  // Identical embedding: hit.
  auto hit = cache.Lookup({1.0, 2.0, 3.0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->generation.text, "cached");

  // Same lattice cell, tiny perturbation within threshold: hit.
  EXPECT_NE(cache.Lookup({1.000001, 2.0, 3.0}), nullptr);

  // Same cell but beyond the distance threshold: the guard rejects it.
  // (0.04 offset stays in the 0.1 cell, 0.04^2 = 1.6e-3 > 1e-4.)
  EXPECT_EQ(cache.Lookup({1.04, 2.0, 3.0}), nullptr);

  // Different cell: miss.
  EXPECT_EQ(cache.Lookup({1.5, 2.0, 3.0}), nullptr);

  auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ExplainCacheTest, LruEvictsWithinShard) {
  ShardedExplainCache::Options opts;
  opts.capacity = 4;
  opts.shards = 1;
  opts.quant_step = 1.0;
  ShardedExplainCache cache(opts);
  for (int i = 0; i < 10; ++i) {
    auto e = std::make_shared<CachedExplanation>();
    e->embedding = {static_cast<double>(10 * i)};
    cache.Insert(e);
  }
  auto stats = cache.GetStats();
  EXPECT_EQ(stats.size, 4u);
  EXPECT_EQ(stats.evictions, 6u);
  // Most recent survives, oldest evicted.
  EXPECT_NE(cache.Lookup({90.0}), nullptr);
  EXPECT_EQ(cache.Lookup({0.0}), nullptr);
}

TEST(MetricsTest, HistogramQuantilesAndCounters) {
  LatencyHistogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(1.0);   // ~1 ms
  for (int i = 0; i < 10; ++i) hist.Record(100.0);  // tail
  auto snap = hist.Snap();
  EXPECT_EQ(snap.count, 110u);
  EXPECT_NEAR(snap.sum_ms, 1100.0, 1.0);
  EXPECT_LE(snap.min_ms, 1.0);
  EXPECT_GE(snap.max_ms, 100.0);
  EXPECT_LT(snap.p50_ms, 10.0);
  EXPECT_GT(snap.p99_ms, 50.0);

  Counter c;
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.Value(), 5u);
}

TEST(MetricsTest, HistogramConcurrentRecords) {
  LatencyHistogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < 1000; ++i) hist.Record(0.5 + 0.001 * i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.Snap().count, 4000u);
}

}  // namespace
}  // namespace htapex
