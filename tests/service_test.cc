#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/htap_explainer.h"
#include "obs/metrics.h"
#include "service/explain_cache.h"
#include "service/explain_service.h"
#include "workload/query_generator.h"

namespace htapex {
namespace {

/// Shared expensive fixture: plan-only system + trained explainer with the
/// default 20-entry knowledge base (HNSW-indexed, so concurrent corrections
/// exercise the graph insert path too).
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
    ExplainerConfig ec;
    ec.kb_index = KnowledgeBase::IndexMode::kHnsw;
    explainer_ = new HtapExplainer(system_, ec);
    auto train = explainer_->TrainRouter();
    ASSERT_TRUE(train.ok()) << train.status();
    ASSERT_TRUE(explainer_->BuildDefaultKnowledgeBase().ok());
  }
  static void TearDownTestSuite() {
    delete explainer_;
    delete system_;
    explainer_ = nullptr;
    system_ = nullptr;
  }
  static HtapSystem* system_;
  static HtapExplainer* explainer_;
};

HtapSystem* ServiceTest::system_ = nullptr;
HtapExplainer* ServiceTest::explainer_ = nullptr;

TEST_F(ServiceTest, SyncExplainMatchesDirectExplain) {
  const std::string sql = "SELECT c_name FROM customer WHERE c_custkey = 42";
  ExplainService service(explainer_, ServiceConfig{});
  auto via_service = service.ExplainSync(sql);
  ASSERT_TRUE(via_service.ok()) << via_service.status();
  auto direct = explainer_->Explain(sql);
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_EQ(via_service->outcome.faster, direct->outcome.faster);
  EXPECT_EQ(via_service->generation.text, direct->generation.text);
  EXPECT_EQ(via_service->grade.grade, direct->grade.grade);
  EXPECT_FALSE(via_service->from_cache);
}

TEST_F(ServiceTest, RepeatedQueryServedFromCacheWithHonestTiming) {
  ExplainService service(explainer_, ServiceConfig{});
  const std::string sql =
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10";
  auto miss = service.ExplainSync(sql);
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->from_cache);
  EXPECT_GT(miss->generation.timing.total_ms(), 0.0);

  auto hit = service.ExplainSync(sql);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(hit->generation.text, miss->generation.text);
  EXPECT_EQ(hit->grade.grade, miss->grade.grade);
  // Honest hit timing: the probe is charged, the skipped search/generation
  // are not, so a hit is dramatically cheaper end to end.
  EXPECT_GE(hit->cache_lookup_ms, 0.0);
  EXPECT_EQ(hit->generation.timing.total_ms(), 0.0);
  EXPECT_EQ(hit->retrieval.search_ms, 0.0);
  EXPECT_LT(hit->end_to_end_ms(), miss->end_to_end_ms());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.end_to_end.count, 2u);
}

TEST_F(ServiceTest, CacheDisabledNeverHits) {
  ServiceConfig config;
  config.cache_enabled = false;
  ExplainService service(explainer_, config);
  const std::string sql = "SELECT c_name FROM customer WHERE c_custkey = 7";
  for (int i = 0; i < 2; ++i) {
    auto r = service.ExplainSync(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->from_cache);
  }
  EXPECT_EQ(service.Stats().cache_hits, 0u);
}

TEST_F(ServiceTest, InvalidSqlReportsErrorNotCrash) {
  ExplainService service(explainer_, ServiceConfig{});
  auto r = service.ExplainSync("SELECT nonsense FROM nowhere");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(service.Stats().errors, 1u);
}

TEST_F(ServiceTest, ConcurrentExplainAndCorrectionLosesNothing) {
  // N explain threads hammer a shared workload while M correction threads
  // insert expert corrections; the reader/writer locking must neither lose
  // a KB insert nor corrupt a retrieval.
  constexpr int kExplainThreads = 4;
  constexpr int kQueriesPerThread = 12;
  constexpr int kCorrections = 8;

  ServiceConfig config;
  config.num_workers = 4;
  ExplainService service(explainer_, config);

  // Deterministic workload: few distinct queries, many repeats, so the
  // cache must hit.
  QueryGenerator gen(system_->config().stats_scale_factor, /*seed=*/0x5eed);
  std::vector<std::string> sqls;
  for (const GeneratedQuery& q : gen.GenerateMix(6)) sqls.push_back(q.sql);

  // Corrections come from fresh, distinct queries (distinct embeddings).
  QueryGenerator correction_gen(system_->config().stats_scale_factor,
                                /*seed=*/0xfeedb);
  std::vector<std::string> correction_sqls;
  for (const GeneratedQuery& q : correction_gen.GenerateMix(kCorrections)) {
    correction_sqls.push_back(q.sql);
  }

  const size_t kb_before = explainer_->knowledge_base().size();
  std::atomic<int> explain_ok{0};
  std::atomic<int> correction_ok{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kExplainThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const std::string& sql =
            sqls[static_cast<size_t>((t + i) % sqls.size())];
        auto r = service.ExplainSync(sql);
        if (r.ok()) explain_ok.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (const std::string& sql : correction_sqls) {
      auto r = service.ExplainSync(sql);
      if (!r.ok()) continue;
      if (service.IncorporateCorrection(*r).ok()) correction_ok.fetch_add(1);
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(explain_ok.load(), kExplainThreads * kQueriesPerThread);
  EXPECT_EQ(correction_ok.load(), kCorrections);
  // No lost KB entries: every successful correction is present.
  EXPECT_EQ(explainer_->knowledge_base().size(),
            kb_before + static_cast<size_t>(correction_ok.load()));

  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.cache_hits, 0u) << stats.ToString();
  EXPECT_EQ(stats.errors, 0u) << stats.ToString();
  EXPECT_EQ(stats.completed,
            static_cast<uint64_t>(kExplainThreads * kQueriesPerThread +
                                  kCorrections));
  EXPECT_EQ(stats.kb_inserts, static_cast<uint64_t>(kCorrections));
}

TEST_F(ServiceTest, SubmitManyFuturesAllResolve) {
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 4;  // forces Submit to block on backpressure
  ExplainService service(explainer_, config);
  std::vector<std::future<Result<ExplainResult>>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(service.Submit(
        "SELECT c_name FROM customer WHERE c_custkey = " +
        std::to_string(i % 3)));
  }
  int ok = 0;
  for (auto& f : futures) {
    if (f.get().ok()) ++ok;
  }
  EXPECT_EQ(ok, 24);
}

TEST_F(ServiceTest, SubmitAfterShutdownFailsCleanly) {
  ExplainService service(explainer_, ServiceConfig{});
  service.Shutdown();
  auto r = service.Submit("SELECT c_name FROM customer WHERE c_custkey = 1")
               .get();
  ASSERT_FALSE(r.ok());
  // Typed rejection: callers can distinguish "shutting down" from a bad
  // query or an exhausted dependency.
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  // Batch submissions racing shutdown resolve every future the same way.
  auto futures = service.SubmitBatch(
      {"SELECT c_name FROM customer WHERE c_custkey = 2",
       "SELECT c_name FROM customer WHERE c_custkey = 3"});
  ASSERT_EQ(futures.size(), 2u);
  for (auto& f : futures) {
    auto br = f.get();
    ASSERT_FALSE(br.ok());
    EXPECT_EQ(br.status().code(), StatusCode::kUnavailable);
  }
}

TEST_F(ServiceTest, OverBudgetRequestRejectedAtDequeue) {
  ServiceConfig config;
  config.num_workers = 1;  // the second request must wait for the first
  config.cache_enabled = false;
  // Make the first request cost real wall time (~10 ms: simulated LLM
  // thinking+generation at 1/1000 scale) so the second demonstrably
  // overstays its budget in the queue.
  config.llm_wall_scale = 0.001;
  ExplainService service(explainer_, config);
  auto first =
      service.Submit("SELECT c_name FROM customer WHERE c_custkey = 11");
  auto second =
      service.Submit("SELECT c_name FROM customer WHERE c_custkey = 12",
                     /*budget_ms=*/0.01);
  auto r1 = first.get();
  EXPECT_TRUE(r1.ok()) << r1.status();
  auto r2 = second.get();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kDeadlineExceeded);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.early_rejections, 1u) << stats.ToString();
  EXPECT_EQ(stats.degraded_failed, 1u) << stats.ToString();
}

TEST_F(ServiceTest, ChaosFaultsDegradeGracefullyWithoutLosses) {
  // 8 workers under a 20% transient + 10% timeout LLM fault rate (plus KB
  // search/insert faults), with concurrent expert corrections. The chaos
  // invariants: every future resolves (no deadlock, no lost promises),
  // nothing hard-fails (every valid query is answered at SOME rung of the
  // degradation ladder), the degradation tags are valid, and the service's
  // counters reconcile with what the callers observed.
  ASSERT_TRUE(explainer_
                  ->ConfigureFaults(
                      "llm.transient_error:p=0.2;llm.timeout:p=0.1;"
                      "llm.garbled_output:p=0.05;kb.hnsw_search:p=0.2;"
                      "kb.insert:p=0.1",
                      /*fault_seed=*/1337)
                  .ok());

  constexpr int kQueries = 96;
  constexpr int kCorrections = 6;
  const size_t kb_before = explainer_->knowledge_base().size();
  std::atomic<int> answered{0};
  std::atomic<int> degraded{0};
  std::atomic<int> invalid_tags{0};
  std::atomic<int> correction_ok{0};
  {
    ServiceConfig config;
    config.num_workers = 8;
    config.cache_enabled = false;  // every request exercises the ladder
    ExplainService service(explainer_, config);

    QueryGenerator gen(system_->config().stats_scale_factor, /*seed=*/0xc4a5);
    std::vector<std::string> sqls;
    for (const GeneratedQuery& q : gen.GenerateMix(kQueries)) {
      sqls.push_back(q.sql);
    }
    QueryGenerator correction_gen(system_->config().stats_scale_factor,
                                  /*seed=*/0xc0ffee);
    std::vector<std::string> correction_sqls;
    for (const GeneratedQuery& q : correction_gen.GenerateMix(kCorrections)) {
      correction_sqls.push_back(q.sql);
    }

    std::thread corrector([&] {
      for (const std::string& sql : correction_sqls) {
        auto r = service.ExplainSync(sql);
        if (!r.ok()) continue;
        // Retried internally on injected kb.insert faults.
        if (service.IncorporateCorrection(*r).ok()) correction_ok.fetch_add(1);
      }
    });
    auto futures = service.SubmitBatch(sqls);
    ASSERT_EQ(futures.size(), sqls.size());
    for (auto& fut : futures) {
      // A hang here is the deadlock the chaos test exists to catch.
      ASSERT_EQ(fut.wait_for(std::chrono::seconds(60)),
                std::future_status::ready);
      auto r = fut.get();
      ASSERT_TRUE(r.ok()) << r.status();  // faults degrade, never hard-fail
      switch (r->degradation) {
        case DegradationLevel::kFull:
          answered.fetch_add(1);
          break;
        case DegradationLevel::kBaselineFallback:
        case DegradationLevel::kPlanDiffOnly:
          answered.fetch_add(1);
          degraded.fetch_add(1);
          EXPECT_FALSE(r->degradation_reason.empty());
          break;
        default:
          invalid_tags.fetch_add(1);
      }
      // Degraded or not, an answer carries a grade and non-garbled text.
      EXPECT_FALSE(r->generation.text.empty());
    }
    corrector.join();

    EXPECT_EQ(answered.load(), kQueries);
    EXPECT_EQ(invalid_tags.load(), 0);
    EXPECT_EQ(correction_ok.load(), kCorrections);
    EXPECT_EQ(explainer_->knowledge_base().size(),
              kb_before + static_cast<size_t>(correction_ok.load()));

    ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.errors, 0u) << stats.ToString();
    EXPECT_EQ(stats.completed,
              static_cast<uint64_t>(kQueries + kCorrections));
    // The degradation mix partitions the completed requests.
    EXPECT_EQ(stats.degraded_full + stats.degraded_baseline +
                  stats.degraded_plan_diff + stats.degraded_failed,
              stats.completed)
        << stats.ToString();
    // Under 30%+ combined fault pressure the resilience layer must have
    // actually done something.
    EXPECT_GT(stats.resilience.llm_retries, 0u) << stats.ToString();
    EXPECT_GT(stats.resilience.llm_attempts, stats.resilience.llm_retries);
  }
  // Restore a fault-free explainer for any later test using the fixture.
  ASSERT_TRUE(explainer_->ConfigureFaults("off", 42).ok());
}

TEST(ExplainCacheTest, QuantizedKeyAndThreshold) {
  ShardedExplainCache::Options opts;
  opts.quant_step = 0.1;
  opts.max_sq_distance = 1e-4;
  ShardedExplainCache cache(opts);

  auto entry = std::make_shared<CachedExplanation>();
  entry->embedding = {1.0, 2.0, 3.0};
  entry->generation.text = "cached";
  cache.Insert(entry);

  // Identical embedding: hit.
  auto hit = cache.Lookup({1.0, 2.0, 3.0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->generation.text, "cached");

  // Same lattice cell, tiny perturbation within threshold: hit.
  EXPECT_NE(cache.Lookup({1.000001, 2.0, 3.0}), nullptr);

  // Same cell but beyond the distance threshold: the guard rejects it.
  // (0.04 offset stays in the 0.1 cell, 0.04^2 = 1.6e-3 > 1e-4.)
  EXPECT_EQ(cache.Lookup({1.04, 2.0, 3.0}), nullptr);

  // Different cell: miss.
  EXPECT_EQ(cache.Lookup({1.5, 2.0, 3.0}), nullptr);

  auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ExplainCacheTest, LruEvictsWithinShard) {
  ShardedExplainCache::Options opts;
  opts.capacity = 4;
  opts.shards = 1;
  opts.quant_step = 1.0;
  ShardedExplainCache cache(opts);
  for (int i = 0; i < 10; ++i) {
    auto e = std::make_shared<CachedExplanation>();
    e->embedding = {static_cast<double>(10 * i)};
    cache.Insert(e);
  }
  auto stats = cache.GetStats();
  EXPECT_EQ(stats.size, 4u);
  EXPECT_EQ(stats.evictions, 6u);
  // Most recent survives, oldest evicted.
  EXPECT_NE(cache.Lookup({90.0}), nullptr);
  EXPECT_EQ(cache.Lookup({0.0}), nullptr);
}

TEST(ExplainCacheTest, ZeroShardsOrCapacityFallBackToDefaults) {
  // Regression: shards = 0 used to clamp to a single shard (serializing
  // every worker on one mutex) and a zero capacity collapsed to one entry
  // per shard. A zero is a misconfiguration, not a request for a
  // degenerate cache — both now fall back to the documented defaults.
  ShardedExplainCache::Options zeroed;
  zeroed.shards = 0;
  zeroed.capacity = 0;
  ShardedExplainCache cache(zeroed);
  ShardedExplainCache::Options defaults;
  EXPECT_EQ(cache.options().shards, defaults.shards);
  EXPECT_EQ(cache.options().capacity, defaults.capacity);

  // And the defaulted cache actually works.
  auto e = std::make_shared<CachedExplanation>();
  e->embedding = {1.0, 2.0};
  e->generation.text = "cached";
  cache.Insert(e);
  auto hit = cache.Lookup({1.0, 2.0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->generation.text, "cached");

  // capacity < shards still rounds capacity up so each shard holds >= 1.
  ShardedExplainCache::Options tiny;
  tiny.shards = 8;
  tiny.capacity = 2;
  ShardedExplainCache small(tiny);
  EXPECT_EQ(small.options().capacity, 8u);
}

TEST(MetricsTest, HistogramQuantilesAndCounters) {
  LatencyHistogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(1.0);   // ~1 ms
  for (int i = 0; i < 10; ++i) hist.Record(100.0);  // tail
  auto snap = hist.Snap();
  EXPECT_EQ(snap.count, 110u);
  EXPECT_NEAR(snap.sum_ms, 1100.0, 1.0);
  EXPECT_LE(snap.min_ms, 1.0);
  EXPECT_GE(snap.max_ms, 100.0);
  EXPECT_LT(snap.p50_ms, 10.0);
  EXPECT_GT(snap.p99_ms, 50.0);

  Counter c;
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.Value(), 5u);
}

TEST(MetricsTest, HistogramConcurrentRecords) {
  LatencyHistogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < 1000; ++i) hist.Record(0.5 + 0.001 * i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.Snap().count, 4000u);
}

}  // namespace
}  // namespace htapex
