// Tests for the self-healing model lifecycle (src/lifecycle/): the
// WAL-backed feedback buffer, drift detection, shadow-validated retraining,
// atomic hot-swap, regression rollback, the retrain/shadow/swap fault
// matrix, and the ExplainService integration. Labelled `lifecycle` in
// tests/CMakeLists.txt; the kill/fault matrix here is the contract the
// ISSUE acceptance bar names: at every injection point the serving router
// keeps answering from the old snapshot, version and CRC unchanged.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "lifecycle/feedback_buffer.h"
#include "lifecycle/model_lifecycle.h"
#include "router/plan_featurizer.h"
#include "router/smart_router.h"
#include "service/explain_service.h"
#include "workload/query_generator.h"

namespace htapex {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "htapex_lifecycle_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- synthetic feedback -----------------------------------------------
//
// Single-node plan trees at the router's real feature width whose label is
// a learnable wide-margin function of the features: the faster engine's
// tree carries a high first feature, the slower one a low first feature
// (the rest is noise). A "regime flip" inverts the rule — the same feature
// distribution with flipped labels, which is exactly what a cluster-shrink
// drift does to the contested region.

PlanTreeFeatures SyntheticTree(Rng* rng) {
  PlanTreeFeatures t;
  t.num_nodes = 1;
  t.feature_dim = kPlanFeatureDim;
  t.x.resize(static_cast<size_t>(kPlanFeatureDim));
  for (double& v : t.x) v = rng->UniformReal(0, 1);
  t.left.assign(1, -1);
  t.right.assign(1, -1);
  return t;
}

PairExample SyntheticExample(Rng* rng, bool flipped) {
  PairExample ex;
  ex.tp = SyntheticTree(rng);
  ex.ap = SyntheticTree(rng);
  bool ap_faster = rng->UniformReal(0, 1) < 0.5;
  ex.ap.x[0] =
      ap_faster ? rng->UniformReal(0.8, 1.0) : rng->UniformReal(0.0, 0.2);
  ex.tp.x[0] =
      ap_faster ? rng->UniformReal(0.0, 0.2) : rng->UniformReal(0.8, 1.0);
  ex.label = (ap_faster != flipped) ? 1 : 0;
  return ex;
}

std::vector<PairExample> SyntheticSet(uint64_t seed, int n, bool flipped) {
  Rng rng(seed);
  std::vector<PairExample> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(SyntheticExample(&rng, flipped));
  return out;
}

FeedbackSample MakeSample(uint64_t seed, bool correct) {
  Rng rng(seed);
  FeedbackSample s;
  s.example = SyntheticExample(&rng, false);
  s.p_ap = rng.UniformReal(0, 1);
  s.correct = correct;
  return s;
}

// --- feedback buffer ---------------------------------------------------

TEST(FeedbackSampleTest, EncodeDecodeRoundTrip) {
  FeedbackSample s = MakeSample(11, true);
  auto back = DecodeFeedbackSample(EncodeFeedbackSample(s));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->example.label, s.example.label);
  EXPECT_EQ(back->correct, s.correct);
  EXPECT_DOUBLE_EQ(back->p_ap, s.p_ap);
  ASSERT_EQ(back->example.tp.num_nodes, s.example.tp.num_nodes);
  ASSERT_EQ(back->example.tp.x.size(), s.example.tp.x.size());
  for (size_t i = 0; i < s.example.tp.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(back->example.tp.x[i], s.example.tp.x[i]);
  }
  EXPECT_EQ(back->example.ap.left, s.example.ap.left);
  EXPECT_EQ(back->example.ap.right, s.example.ap.right);
}

TEST(FeedbackSampleTest, DecodeRejectsMalformedPayloads) {
  EXPECT_FALSE(DecodeFeedbackSample("not json").ok());
  EXPECT_FALSE(DecodeFeedbackSample("{}").ok());
  // Tree whose child arrays disagree with the stated node count.
  EXPECT_FALSE(
      DecodeFeedbackSample(
          R"({"tp":{"n":2,"f":1,"x":[0.5,0.5],"l":[-1],"r":[-1,-1]},)"
          R"("ap":{"n":1,"f":1,"x":[0.5],"l":[-1],"r":[-1]},"label":0})")
          .ok());
}

TEST(FeedbackBufferTest, BoundsCapacityOldestFirst) {
  FeedbackBufferOptions opts;
  opts.capacity = 4;
  FeedbackBuffer buffer(opts);
  ASSERT_TRUE(buffer.Open().ok());
  for (int i = 0; i < 10; ++i) {
    FeedbackSample s = MakeSample(100 + static_cast<uint64_t>(i), true);
    s.example.label = i % 2;
    s.example.tp.x[1] = i;  // identity marker
    buffer.Add(std::move(s));
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.total_added(), 10u);
  std::vector<PairExample> newest = buffer.NewestExamples(3);
  ASSERT_EQ(newest.size(), 3u);
  // Oldest-first within the newest window: samples 7, 8, 9.
  EXPECT_DOUBLE_EQ(newest[0].tp.x[1], 7.0);
  EXPECT_DOUBLE_EQ(newest[2].tp.x[1], 9.0);
  EXPECT_EQ(buffer.NewestExamples(99).size(), 4u);
}

TEST(FeedbackBufferTest, WindowAccuracyCountsNewestVerdicts) {
  FeedbackBuffer buffer(FeedbackBufferOptions{});
  ASSERT_TRUE(buffer.Open().ok());
  for (int i = 0; i < 8; ++i) {
    buffer.Add(MakeSample(static_cast<uint64_t>(i), /*correct=*/i >= 4));
  }
  EXPECT_DOUBLE_EQ(buffer.WindowAccuracy(4), 1.0);   // newest 4 all correct
  EXPECT_DOUBLE_EQ(buffer.WindowAccuracy(8), 0.5);
  EXPECT_DOUBLE_EQ(buffer.WindowAccuracy(100), 0.5);
}

TEST(FeedbackBufferTest, RecoversNewestWindowFromLog) {
  const std::string dir = TestDir("recover");
  FeedbackBufferOptions opts;
  opts.capacity = 8;
  opts.dir = dir;
  opts.fsync_every_n = 1;
  {
    FeedbackBuffer buffer(opts);
    ASSERT_TRUE(buffer.Open().ok());
    EXPECT_TRUE(buffer.durable());
    for (int i = 0; i < 12; ++i) {
      FeedbackSample s = MakeSample(200 + static_cast<uint64_t>(i), true);
      s.example.tp.x[1] = i;
      buffer.Add(std::move(s));
    }
  }
  FeedbackBuffer recovered(opts);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.recovery_stats().replayed, 12u);
  EXPECT_EQ(recovered.size(), 8u);  // newest `capacity` kept
  std::vector<PairExample> newest = recovered.NewestExamples(8);
  EXPECT_DOUBLE_EQ(newest.front().tp.x[1], 4.0);
  EXPECT_DOUBLE_EQ(newest.back().tp.x[1], 11.0);
  std::filesystem::remove_all(dir);
}

TEST(FeedbackBufferTest, TruncatesTornTailOnRecovery) {
  const std::string dir = TestDir("torn");
  FeedbackBufferOptions opts;
  opts.dir = dir;
  opts.fsync_every_n = 1;
  {
    FeedbackBuffer buffer(opts);
    ASSERT_TRUE(buffer.Open().ok());
    for (int i = 0; i < 5; ++i) {
      buffer.Add(MakeSample(300 + static_cast<uint64_t>(i), true));
    }
  }
  {  // Tear the tail: a frame header promising bytes that never arrived.
    std::ofstream f(dir + "/feedback.log",
                    std::ios::binary | std::ios::app);
    const uint32_t len = 100000;
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write("xx", 2);
  }
  FeedbackBuffer recovered(opts);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.recovery_stats().replayed, 5u);
  EXPECT_GE(recovered.recovery_stats().truncated, 1u);
  EXPECT_EQ(recovered.size(), 5u);
  // The truncated log accepts appends again at a clean boundary.
  recovered.Add(MakeSample(399, true));
  EXPECT_TRUE(recovered.durable());
  std::filesystem::remove_all(dir);
}

TEST(FeedbackBufferTest, WalFailureDegradesToMemoryOnly) {
  const std::string dir = TestDir("wedge");
  auto faults = FaultInjector::Parse("wal.append:p=1");
  ASSERT_TRUE(faults.ok());
  FeedbackBufferOptions opts;
  opts.dir = dir;
  FeedbackBuffer buffer(opts);
  ASSERT_TRUE(buffer.Open().ok());
  buffer.set_fault_injector(&*faults);
  for (int i = 0; i < 3; ++i) {
    buffer.Add(MakeSample(400 + static_cast<uint64_t>(i), true));
  }
  // The injected append crash wedges the log once; feedback keeps flowing
  // in memory and the loss is counted, never propagated.
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.total_added(), 3u);
  EXPECT_EQ(buffer.wal_failures(), 1u);
  EXPECT_FALSE(buffer.durable());
  std::filesystem::remove_all(dir);
}

TEST(FeedbackBufferTest, CompactionBoundsLogAndPreservesWindow) {
  const std::string dir = TestDir("compact");
  FeedbackBufferOptions opts;
  opts.capacity = 4;
  opts.compact_factor = 2;
  opts.dir = dir;
  opts.fsync_every_n = 1;
  {
    FeedbackBuffer buffer(opts);
    ASSERT_TRUE(buffer.Open().ok());
    for (int i = 0; i < 40; ++i) {
      FeedbackSample s = MakeSample(500 + static_cast<uint64_t>(i), true);
      s.example.tp.x[1] = i;
      buffer.Add(std::move(s));
    }
    EXPECT_TRUE(buffer.durable());
  }
  FeedbackBuffer recovered(opts);
  ASSERT_TRUE(recovered.Open().ok());
  // Compaction rewrote the log from the in-memory window, so recovery sees
  // far fewer records than the 40 appends — bounded by factor * capacity
  // plus the appends since the last rewrite.
  EXPECT_LE(recovered.recovery_stats().replayed,
            opts.compact_factor * opts.capacity + 1);
  std::vector<PairExample> newest = recovered.NewestExamples(4);
  ASSERT_EQ(newest.size(), 4u);
  EXPECT_DOUBLE_EQ(newest.back().tp.x[1], 39.0);
  std::filesystem::remove_all(dir);
}

// --- lifecycle manager -------------------------------------------------

LifecycleOptions TestOptions() {
  LifecycleOptions opts;
  opts.enabled = true;
  opts.feedback_capacity = 256;
  opts.min_samples = 32;
  opts.eval_every = 8;
  opts.drift_window = 32;
  opts.drift_threshold = 0.2;
  opts.retrain_window = 64;  // newest window only: the post-drift regime
  opts.retrain_epochs = 60;
  opts.shadow_window = 32;
  opts.shadow_beats = 1;
  opts.watch_window = 24;
  opts.regression_threshold = 0.1;
  opts.tick_every_samples = 0;  // tests tick explicitly
  opts.seed = 7;
  return opts;
}

/// Serving router pre-trained on the un-flipped regime.
std::unique_ptr<SmartRouter> TrainedRouter() {
  auto router = std::make_unique<SmartRouter>(7);
  router->Train(SyntheticSet(21, 160, /*flipped=*/false), 60);
  return router;
}

void Feed(ModelLifecycleManager* m, const std::vector<PairExample>& set) {
  for (const PairExample& ex : set) m->RecordExample(ex);
}

/// Drives the healthy half of every scenario: baseline on the original
/// regime, then drifted (flipped) feedback until the manager has swapped.
/// Returns false if no swap happened within the budget.
bool DriveToSwap(ModelLifecycleManager* m) {
  Feed(m, SyntheticSet(31, 32, false));
  m->Tick();  // baseline set on the healthy window
  Feed(m, SyntheticSet(32, 64, true));
  m->Tick();  // drift detected -> kRetrain
  m->Tick();  // retrain -> kShadow
  m->Tick();  // shadow scored -> swap -> kWatch
  return m->Stats().swaps == 1;
}

TEST(ModelLifecycleTest, DisabledManagerIsInert) {
  auto router = TrainedRouter();
  LifecycleOptions opts;  // enabled defaults to false
  ModelLifecycleManager manager(router.get(), opts);
  ASSERT_TRUE(manager.Open().ok());
  manager.RecordExample(SyntheticSet(41, 1, false)[0]);
  manager.Tick();
  EXPECT_EQ(manager.feedback().total_added(), 0u);
  EXPECT_EQ(manager.EventLog().size(), 0u);
  EXPECT_FALSE(manager.ForceRetrain().ok());
}

TEST(ModelLifecycleTest, DriftTriggersRetrainShadowSwap) {
  auto router = TrainedRouter();
  uint64_t version_before = router->frozen_version();
  uint32_t crc_before = router->frozen_crc();
  ModelLifecycleManager manager(router.get(), TestOptions());
  ASSERT_TRUE(manager.Open().ok());

  // Healthy regime: baseline lands high, no drift, no cycle.
  Feed(&manager, SyntheticSet(31, 32, false));
  manager.Tick();
  LifecycleStats stats = manager.Stats();
  EXPECT_EQ(stats.drift_detections, 0u);
  EXPECT_EQ(manager.phase(), LifecyclePhase::kIdle);

  // Regime flips: windowed accuracy collapses, the full cycle runs.
  Feed(&manager, SyntheticSet(32, 64, true));
  manager.Tick();
  EXPECT_EQ(manager.phase(), LifecyclePhase::kRetrain);
  manager.Tick();
  EXPECT_EQ(manager.phase(), LifecyclePhase::kShadow);
  manager.Tick();
  stats = manager.Stats();
  EXPECT_EQ(stats.drift_detections, 1u);
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.shadow_runs, 1u);
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(manager.phase(), LifecyclePhase::kWatch);
  EXPECT_GT(router->frozen_version(), version_before);
  EXPECT_NE(router->frozen_crc(), crc_before);

  // Post-swap traffic stays in the new regime: the watch accepts.
  Feed(&manager, SyntheticSet(33, 24, true));
  manager.Tick();
  EXPECT_EQ(manager.phase(), LifecyclePhase::kIdle);
  EXPECT_EQ(manager.Stats().rollbacks, 0u);
  // The healed router actually learned the new regime.
  EXPECT_GT(router->EvaluateAccuracy(SyntheticSet(99, 64, true)), 0.8);
}

TEST(ModelLifecycleTest, CurationHookRunsOnDrift) {
  auto router = TrainedRouter();
  ModelLifecycleManager manager(router.get(), TestOptions());
  ASSERT_TRUE(manager.Open().ok());
  int calls = 0;
  manager.set_curation_hook([&calls](uint64_t* expired, uint64_t* backfilled) {
    ++calls;
    *expired = 3;
    *backfilled = 2;
    return Status::OK();
  });
  ASSERT_TRUE(DriveToSwap(&manager));
  EXPECT_EQ(calls, 1);
  LifecycleStats stats = manager.Stats();
  EXPECT_EQ(stats.kb_expired, 3u);
  EXPECT_EQ(stats.kb_backfilled, 2u);
  bool logged = false;
  for (const std::string& e : manager.EventLog()) {
    if (e.find("kb curated expired=3 backfilled=2") != std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged);
}

// --- fault matrix: at every injection point the serving snapshot keeps
// answering, version and CRC unchanged ----------------------------------

TEST(ModelLifecycleTest, RetrainFailureLeavesServingUntouched) {
  auto router = TrainedRouter();
  uint64_t version_before = router->frozen_version();
  uint32_t crc_before = router->frozen_crc();
  auto faults = FaultInjector::Parse("retrain.fail:p=1");
  ASSERT_TRUE(faults.ok());
  ModelLifecycleManager manager(router.get(), TestOptions());
  ASSERT_TRUE(manager.Open().ok());
  manager.set_fault_injector(&*faults);
  Feed(&manager, SyntheticSet(51, 48, false));
  ASSERT_TRUE(manager.ForceRetrain().ok());
  manager.Tick();  // retrain draw fires
  LifecycleStats stats = manager.Stats();
  EXPECT_EQ(stats.retrain_failures, 1u);
  EXPECT_EQ(stats.retrains, 0u);
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(manager.phase(), LifecyclePhase::kIdle);
  EXPECT_EQ(router->frozen_version(), version_before);
  EXPECT_EQ(router->frozen_crc(), crc_before);
  // The old snapshot still answers — and still knows its regime.
  EXPECT_GT(router->EvaluateAccuracy(SyntheticSet(52, 64, false)), 0.8);
}

TEST(ModelLifecycleTest, ShadowStallsAbortAfterBudget) {
  auto router = TrainedRouter();
  uint64_t version_before = router->frozen_version();
  auto faults = FaultInjector::Parse("shadow.stall:p=1,lat=25");
  ASSERT_TRUE(faults.ok());
  ModelLifecycleManager manager(router.get(), TestOptions());
  ASSERT_TRUE(manager.Open().ok());
  manager.set_fault_injector(&*faults);
  Feed(&manager, SyntheticSet(61, 48, true));
  ASSERT_TRUE(manager.ForceRetrain().ok());
  manager.Tick();  // retrain ok -> kShadow
  ASSERT_EQ(manager.phase(), LifecyclePhase::kShadow);
  // Every shadow beat stalls; after max_shadow_stalls the run aborts and
  // the candidate is discarded without ever touching the serving model.
  for (int i = 0; i <= TestOptions().max_shadow_stalls; ++i) manager.Tick();
  LifecycleStats stats = manager.Stats();
  EXPECT_EQ(stats.shadow_stalls,
            static_cast<uint64_t>(TestOptions().max_shadow_stalls) + 1);
  EXPECT_EQ(stats.shadow_aborts, 1u);
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(manager.phase(), LifecyclePhase::kIdle);
  EXPECT_EQ(router->frozen_version(), version_before);
  // Injected stall latency is simulated, never wall time.
  EXPECT_GT(manager.sim_millis(), 0.0);
}

TEST(ModelLifecycleTest, SwapPublishFaultKeepsOldSnapshot) {
  auto router = TrainedRouter();
  uint64_t version_before = router->frozen_version();
  uint32_t crc_before = router->frozen_crc();
  auto faults = FaultInjector::Parse("swap.publish:p=1");
  ASSERT_TRUE(faults.ok());
  ModelLifecycleManager manager(router.get(), TestOptions());
  ASSERT_TRUE(manager.Open().ok());
  manager.set_fault_injector(&*faults);
  // Drifted feedback produces a winning candidate, but publication fails:
  // the old snapshot must stay live, version and CRC unchanged.
  Feed(&manager, SyntheticSet(71, 48, true));
  ASSERT_TRUE(manager.ForceRetrain().ok());
  manager.Tick();  // retrain
  manager.Tick();  // shadow scores; candidate wins; publish fails
  LifecycleStats stats = manager.Stats();
  EXPECT_EQ(stats.swap_failures, 1u);
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(manager.phase(), LifecyclePhase::kIdle);
  EXPECT_EQ(router->frozen_version(), version_before);
  EXPECT_EQ(router->frozen_crc(), crc_before);
  EXPECT_FALSE(manager.ForceRollback().ok());  // nothing was retained
}

TEST(ModelLifecycleTest, RegressionRollsBackToBitIdenticalWeights) {
  auto router = TrainedRouter();
  uint32_t crc_before = router->frozen_crc();
  ModelLifecycleManager manager(router.get(), TestOptions());
  ASSERT_TRUE(manager.Open().ok());
  ASSERT_TRUE(DriveToSwap(&manager));
  uint32_t crc_swapped = router->frozen_crc();
  EXPECT_NE(crc_swapped, crc_before);

  // The post-swap window flips back to the original regime: the candidate
  // that won the shadow is now wrong, the watch must roll back.
  Feed(&manager, SyntheticSet(81, 24, false));
  manager.Tick();
  LifecycleStats stats = manager.Stats();
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_EQ(manager.phase(), LifecyclePhase::kIdle);
  // Restored weights are bit-identical to the pre-swap snapshot: a fresh
  // publication (new version) hashing to the exact same CRC.
  EXPECT_EQ(router->frozen_crc(), crc_before);
  bool logged = false;
  for (const std::string& e : manager.EventLog()) {
    if (e.find("rollback (regression") != std::string::npos &&
        e.find("identical=1") != std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged);
  // The retained snapshot was consumed; a second rollback has no target.
  EXPECT_FALSE(manager.ForceRollback().ok());
}

TEST(ModelLifecycleTest, ManualRollbackAfterAcceptedSwap) {
  auto router = TrainedRouter();
  uint32_t crc_before = router->frozen_crc();
  ModelLifecycleManager manager(router.get(), TestOptions());
  ASSERT_TRUE(manager.Open().ok());
  ASSERT_TRUE(DriveToSwap(&manager));
  Feed(&manager, SyntheticSet(33, 24, true));
  manager.Tick();  // watch accepts; retained snapshot kept for manual use
  ASSERT_EQ(manager.phase(), LifecyclePhase::kIdle);
  ASSERT_NE(router->frozen_crc(), crc_before);
  ASSERT_TRUE(manager.ForceRollback().ok());
  EXPECT_EQ(router->frozen_crc(), crc_before);
  EXPECT_EQ(manager.Stats().rollbacks, 1u);
}

TEST(ModelLifecycleTest, ForceRetrainRejectsWhenBusy) {
  auto router = TrainedRouter();
  ModelLifecycleManager manager(router.get(), TestOptions());
  ASSERT_TRUE(manager.Open().ok());
  Feed(&manager, SyntheticSet(91, 48, false));
  ASSERT_TRUE(manager.ForceRetrain().ok());
  Status busy = manager.ForceRetrain();  // already in kRetrain
  EXPECT_FALSE(busy.ok());
  EXPECT_NE(busy.message().find("busy"), std::string::npos);
  // RunToIdle settles it: retrain -> shadow -> (reject or swap/watch).
  EXPECT_TRUE(manager.RunToIdle().ok());
}

TEST(ModelLifecycleTest, SameSeedRunsProduceIdenticalEventLogs) {
  auto run = [] {
    auto router = TrainedRouter();
    ModelLifecycleManager manager(router.get(), TestOptions());
    EXPECT_TRUE(manager.Open().ok());
    EXPECT_TRUE(DriveToSwap(&manager));
    Feed(&manager, SyntheticSet(33, 24, true));
    manager.Tick();
    return manager.EventLog();
  };
  std::vector<std::string> first = run();
  std::vector<std::string> second = run();
  EXPECT_GT(first.size(), 3u);
  EXPECT_EQ(first, second);
}

TEST(ModelLifecycleTest, RecoversFeedbackAcrossRestart) {
  const std::string dir = TestDir("manager_restart");
  auto router = TrainedRouter();
  LifecycleOptions opts = TestOptions();
  opts.data_dir = dir;
  opts.fsync_every_n = 1;
  {
    ModelLifecycleManager manager(router.get(), opts);
    ASSERT_TRUE(manager.Open().ok());
    Feed(&manager, SyntheticSet(95, 40, false));
    EXPECT_TRUE(manager.feedback().durable());
  }
  ModelLifecycleManager reborn(router.get(), opts);
  ASSERT_TRUE(reborn.Open().ok());
  EXPECT_EQ(reborn.feedback().total_added(), 40u);
  bool logged = false;
  for (const std::string& e : reborn.EventLog()) {
    if (e.find("recovered feedback samples=40") != std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged);
  std::filesystem::remove_all(dir);
}

// --- service integration ----------------------------------------------

TEST(ModelLifecycleTest, ExplainServiceRecordsFeedbackAndExposesStats) {
  HtapSystem system;
  HtapConfig sys_config;
  sys_config.stats_scale_factor = 100.0;
  sys_config.data_scale_factor = 0.0;
  ASSERT_TRUE(system.Init(sys_config).ok());
  HtapExplainer explainer(&system, {});
  ASSERT_TRUE(explainer.TrainRouter().ok());
  ASSERT_TRUE(explainer.BuildDefaultKnowledgeBase().ok());

  ServiceConfig config;
  config.num_workers = 2;
  config.lifecycle.enabled = true;  // memory-only feedback buffer
  ExplainService service(&explainer, config);
  ASSERT_NE(service.lifecycle(), nullptr);
  EXPECT_TRUE(service.lifecycle()->enabled());

  QueryGenerator gen(sys_config.stats_scale_factor, 0x11fe);
  std::vector<std::string> sqls;
  for (const GeneratedQuery& q : gen.GenerateMix(24)) sqls.push_back(q.sql);
  size_t ok_count = 0;
  for (auto& fut : service.SubmitBatch(sqls)) {
    if (fut.get().ok()) ++ok_count;
  }
  ASSERT_GT(ok_count, 0u);

  ServiceStats stats = service.Stats();
  EXPECT_TRUE(stats.lifecycle_enabled);
  EXPECT_GE(stats.lifecycle.feedback_samples, ok_count);
  EXPECT_EQ(stats.lifecycle.phase, "idle");
  EXPECT_GE(stats.lifecycle.active_version, 1u);

  const std::string text = service.ExpositionText();
  EXPECT_NE(text.find("htapex_lifecycle_phase"), std::string::npos);
  EXPECT_NE(text.find("htapex_lifecycle_feedback_samples_total"),
            std::string::npos);
  EXPECT_NE(text.find("htapex_lifecycle_events_total"), std::string::npos);
}

TEST(ModelLifecycleTest, DisabledServiceExposesNoLifecycleSeries) {
  HtapSystem system;
  HtapConfig sys_config;
  sys_config.stats_scale_factor = 100.0;
  sys_config.data_scale_factor = 0.0;
  ASSERT_TRUE(system.Init(sys_config).ok());
  HtapExplainer explainer(&system, {});
  ASSERT_TRUE(explainer.TrainRouter().ok());
  ExplainService service(&explainer, ServiceConfig{});
  EXPECT_EQ(service.lifecycle(), nullptr);
  EXPECT_FALSE(service.Stats().lifecycle_enabled);
  EXPECT_EQ(service.ExpositionText().find("htapex_lifecycle"),
            std::string::npos);
}

}  // namespace
}  // namespace htapex
