#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "service/shard_router.h"
#include "service/sharded_service.h"

namespace htapex {
namespace {

// ---------------------------------------------------------------------------
// ShardRouter: consistent-hash stability (no HTAP system needed).
// ---------------------------------------------------------------------------

std::vector<uint64_t> SyntheticKeys(int n) {
  std::vector<uint64_t> keys;
  keys.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys.push_back(MixFaultSeed(7, 0xABCD, static_cast<uint64_t>(i), 3));
  }
  return keys;
}

TEST(ShardRouterTest, AddingOneShardMovesBoundedKeyFraction) {
  constexpr int kKeys = 20000;
  ShardRouter::Options before;
  before.num_shards = 4;
  ShardRouter::Options after = before;
  after.num_shards = 5;
  ShardRouter r4(before);
  ShardRouter r5(after);
  int moved = 0;
  for (uint64_t key : SyntheticKeys(kKeys)) {
    int a = r4.StaticOwner(key);
    int b = r5.StaticOwner(key);
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    if (a != b) {
      // The only legal move is onto the NEW shard; any key bouncing
      // between pre-existing shards is a consistent-hashing bug.
      EXPECT_EQ(b, 4) << "key moved between old shards";
      ++moved;
    }
  }
  // Ideal share for the new shard is 1/5 of keys; allow 2x slack for
  // vnode placement variance but fail on naive mod-N rehashing (~4/5).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 2 * kKeys / 5);
}

TEST(ShardRouterTest, EjectionMovesOnlyTheEjectedShardsKeys) {
  constexpr int kKeys = 20000;
  ShardRouter::Options opt;
  opt.num_shards = 4;
  ShardRouter router(opt);
  std::vector<int> before;
  for (uint64_t key : SyntheticKeys(kKeys)) {
    before.push_back(router.Owner(key));
  }
  router.SetLive(2, false);
  EXPECT_EQ(router.NumLive(), 3);
  std::vector<uint64_t> keys = SyntheticKeys(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    int now = router.Owner(keys[static_cast<size_t>(i)]);
    ASSERT_NE(now, 2);
    if (before[static_cast<size_t>(i)] != 2) {
      EXPECT_EQ(now, before[static_cast<size_t>(i)])
          << "a surviving shard's key moved on an unrelated ejection";
    }
  }
  // Readmission restores the exact original assignment.
  router.SetLive(2, true);
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(router.Owner(keys[static_cast<size_t>(i)]),
              before[static_cast<size_t>(i)]);
  }
}

TEST(ShardRouterTest, OwnerChainIsDistinctLiveAndOrdered) {
  ShardRouter::Options opt;
  opt.num_shards = 4;
  ShardRouter router(opt);
  for (uint64_t key : SyntheticKeys(64)) {
    std::vector<int> chain = router.OwnerChain(key, 4);
    ASSERT_EQ(chain.size(), 4u);
    EXPECT_EQ(chain[0], router.Owner(key));
    std::set<int> distinct(chain.begin(), chain.end());
    EXPECT_EQ(distinct.size(), chain.size());
  }
  router.SetLive(1, false);
  for (uint64_t key : SyntheticKeys(64)) {
    std::vector<int> chain = router.OwnerChain(key, 4);
    ASSERT_EQ(chain.size(), 3u);
    for (int shard : chain) EXPECT_NE(shard, 1);
  }
}

TEST(ShardRouterTest, KeyOfIsQuantizationStable) {
  std::vector<double> base = {0.20, -0.40, 0.61, 0.0};
  std::vector<double> nudged = base;
  nudged[0] += 0.01;  // well inside the 0.05 lattice cell
  std::vector<double> far = base;
  far[0] += 0.10;  // two cells away
  uint64_t k0 = ShardRouter::KeyOf(base, 0.05);
  EXPECT_EQ(k0, ShardRouter::KeyOf(nudged, 0.05));
  EXPECT_NE(k0, ShardRouter::KeyOf(far, 0.05));
  // quant_step <= 0 falls back to the cache default rather than dividing
  // by zero.
  EXPECT_EQ(ShardRouter::KeyOf(base, 0.0), k0);
}

TEST(ShardRouterTest, NextLiveAfterSkipsDeadShards) {
  ShardRouter::Options opt;
  opt.num_shards = 4;
  ShardRouter router(opt);
  EXPECT_EQ(router.NextLiveAfter(0), 1);
  router.SetLive(1, false);
  EXPECT_EQ(router.NextLiveAfter(0), 2);
  router.SetLive(2, false);
  router.SetLive(3, false);
  EXPECT_EQ(router.NextLiveAfter(0), -1);  // nobody else is alive
}

// ---------------------------------------------------------------------------
// LatencyHistogram::Merge (the aggregation primitive the tier relies on).
// ---------------------------------------------------------------------------

TEST(HistogramMergeTest, MergeEqualsSingleGlobalRecorder) {
  LatencyHistogram a, b, global;
  for (int i = 1; i <= 200; ++i) {
    double ms = 0.01 * i;
    (i % 2 == 0 ? a : b).Record(ms);
    global.Record(ms);
  }
  // A fat tail lives entirely in one shard — quantile averaging would
  // halve it; bucket merge must preserve it.
  for (int i = 0; i < 5; ++i) {
    a.Record(500.0);
    global.Record(500.0);
  }
  LatencyHistogram::Snapshot merged =
      LatencyHistogram::Merge(a.Snap(), b.Snap());
  LatencyHistogram::Snapshot want = global.Snap();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_DOUBLE_EQ(merged.sum_ms, want.sum_ms);
  EXPECT_DOUBLE_EQ(merged.min_ms, want.min_ms);
  EXPECT_DOUBLE_EQ(merged.max_ms, want.max_ms);
  EXPECT_EQ(merged.buckets, want.buckets);
  EXPECT_DOUBLE_EQ(merged.p50_ms, want.p50_ms);
  EXPECT_DOUBLE_EQ(merged.p95_ms, want.p95_ms);
  EXPECT_DOUBLE_EQ(merged.p99_ms, want.p99_ms);
  EXPECT_GE(merged.p99_ms, 100.0) << "tail lost in merge";
}

TEST(HistogramMergeTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram a;
  a.Record(1.0);
  a.Record(2.0);
  LatencyHistogram::Snapshot empty;
  LatencyHistogram::Snapshot left =
      LatencyHistogram::Merge(empty, a.Snap());
  LatencyHistogram::Snapshot right =
      LatencyHistogram::Merge(a.Snap(), empty);
  EXPECT_EQ(left.count, 2u);
  EXPECT_EQ(right.count, 2u);
  EXPECT_DOUBLE_EQ(left.min_ms, right.min_ms);
  EXPECT_DOUBLE_EQ(left.p99_ms, right.p99_ms);
  LatencyHistogram::Snapshot both = LatencyHistogram::Merge(empty, empty);
  EXPECT_EQ(both.count, 0u);
}

TEST(HistogramMergeTest, MergeServiceStatsSumsCountersAndMergesHistograms) {
  ServiceStats a, b;
  a.completed = 3;
  a.cache_hits = 1;
  b.completed = 5;
  b.errors = 2;
  b.durability_enabled = true;
  LatencyHistogram ha, hb;
  ha.Record(1.0);
  hb.Record(9.0);
  a.end_to_end = ha.Snap();
  b.end_to_end = hb.Snap();
  ServiceStats m = MergeServiceStats(a, b);
  EXPECT_EQ(m.completed, 8u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.errors, 2u);
  EXPECT_TRUE(m.durability_enabled);
  EXPECT_EQ(m.end_to_end.count, 2u);
  EXPECT_DOUBLE_EQ(m.end_to_end.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(m.end_to_end.max_ms, 9.0);
}

// ---------------------------------------------------------------------------
// ShardedExplainService (shared expensive fixture, plan-only system).
// ---------------------------------------------------------------------------

class ShardedServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
    ExplainerConfig ec;
    trained_ = new HtapExplainer(system_, ec);
    auto train = trained_->TrainRouter();
    ASSERT_TRUE(train.ok()) << train.status();
  }
  static void TearDownTestSuite() {
    delete trained_;
    delete system_;
    trained_ = nullptr;
    system_ = nullptr;
  }

  /// In-memory 4-shard tier adopting the pre-trained router weights.
  static std::unique_ptr<ShardedExplainService> MakeTier(
      ShardedServiceConfig config = {}) {
    ExplainerConfig ec;
    auto tier = std::make_unique<ShardedExplainService>(system_, ec,
                                                        std::move(config));
    Status st = tier->InitFrom(trained_->router());
    EXPECT_TRUE(st.ok()) << st;
    return tier;
  }

  static std::string UniqueDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "htapex_shard_" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  /// Point lookups with distinct literals: cheap to plan, distinct ring
  /// keys are likely but not required by any test below.
  static std::vector<std::string> QuerySet(int n, int salt = 0) {
    std::vector<std::string> sqls;
    for (int i = 0; i < n; ++i) {
      sqls.push_back("SELECT c_name FROM customer WHERE c_custkey = " +
                     std::to_string(1 + salt + i * 7));
    }
    return sqls;
  }

  /// Non-expired sqls across every shard KB (dead shards contribute none).
  static std::multiset<std::string> TierKbSqls(
      const ShardedExplainService& tier) {
    std::multiset<std::string> sqls;
    for (int s = 0; s < tier.num_shards(); ++s) {
      const KnowledgeBase* kb = tier.shard_kb(s);
      if (kb == nullptr) continue;
      for (int id = 0; id < static_cast<int>(kb->total_entries()); ++id) {
        if (kb->IsExpired(id)) continue;
        const KbEntry* e = kb->RawGet(id);
        if (e != nullptr) sqls.insert(e->sql);
      }
    }
    return sqls;
  }

  static HtapSystem* system_;
  static HtapExplainer* trained_;
};

HtapSystem* ShardedServiceTest::system_ = nullptr;
HtapExplainer* ShardedServiceTest::trained_ = nullptr;

TEST_F(ShardedServiceTest, RoutesByEmbeddingAndTagsFailoverInfo) {
  auto tier = MakeTier();
  ASSERT_TRUE(tier->BuildDefaultKnowledgeBase().ok());
  for (const std::string& sql : QuerySet(6)) {
    auto r = tier->Explain(sql);
    ASSERT_TRUE(r.ok()) << r.status();
    auto key = tier->KeyForSql(sql);
    ASSERT_TRUE(key.ok());
    EXPECT_EQ(r->failover.primary_shard, tier->router()->Owner(*key));
    EXPECT_EQ(r->failover.final_shard, r->failover.primary_shard);
    EXPECT_EQ(r->failover.attempts, 1);
    EXPECT_FALSE(r->failover.failed_over);
  }
  ShardedServiceStats stats = tier->Stats();
  EXPECT_EQ(stats.failover.requests, 6u);
  EXPECT_EQ(stats.failover.failovers, 0u);
  EXPECT_EQ(stats.merged.completed, 6u);
  EXPECT_EQ(stats.live_shards, 4);
}

TEST_F(ShardedServiceTest, SameSqlAlwaysLandsOnSameShard) {
  auto tier = MakeTier();
  const std::string sql = QuerySet(1)[0];
  int first = -2;
  for (int i = 0; i < 3; ++i) {
    auto r = tier->Explain(sql);
    ASSERT_TRUE(r.ok());
    if (first == -2) first = r->failover.final_shard;
    EXPECT_EQ(r->failover.final_shard, first);
  }
  // Shard-local cache affinity follows: the repeats hit.
  EXPECT_GE(tier->Stats().merged.cache_hits, 2u);
}

TEST_F(ShardedServiceTest, KillShardFailsOverWithBudgetCarryOver) {
  auto tier = MakeTier();
  const std::vector<std::string> sqls = QuerySet(12);
  // Find a query owned by some shard, then kill exactly that shard.
  auto key = tier->KeyForSql(sqls[0]);
  ASSERT_TRUE(key.ok());
  int victim = tier->router()->Owner(*key);
  ASSERT_GE(victim, 0);
  tier->KillShard(victim);
  EXPECT_EQ(tier->HealthOf(victim), ShardHealth::kDead);
  EXPECT_EQ(tier->shard_kb(victim), nullptr);
  EXPECT_EQ(tier->shard_service(victim), nullptr);

  auto r = tier->Explain(sqls[0]);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->failover.final_shard, victim);
  // The dead shard is off the ring, so the re-hash is the new primary —
  // no per-request retries were needed.
  EXPECT_EQ(r->failover.attempts, 1);
  ShardedServiceStats stats = tier->Stats();
  EXPECT_EQ(stats.failover.kills, 1u);
  EXPECT_EQ(stats.live_shards, 3);
}

TEST_F(ShardedServiceTest, DrainingShardReturnsTypedUnavailableWithShardId) {
  // The satellite contract: shutdown/orphan rejections are
  // StatusCode::kUnavailable with the shard id attached — the router
  // never matches message strings.
  ExplainerConfig ec;
  HtapExplainer explainer(system_, ec);
  explainer.mutable_router().CloneWeightsFrom(trained_->router());
  ServiceConfig sc;
  sc.shard_id = 3;
  auto service = std::make_unique<ExplainService>(&explainer, sc);
  service->Shutdown();
  auto r = service->ExplainSync("SELECT c_name FROM customer LIMIT 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("shard 3"), std::string::npos);
}

TEST_F(ShardedServiceTest, HealthLifecycleEjectProbeReadmit) {
  ShardedServiceConfig config;
  config.probation_after_beats = 2;
  config.probation_successes = 2;
  auto tier = MakeTier(config);
  ASSERT_TRUE(tier->BuildDefaultKnowledgeBase().ok());
  tier->KillShard(1);
  ASSERT_EQ(tier->HealthOf(1), ShardHealth::kDead);

  // Beat 1: still waiting. Beat 2: auto-revival into probation.
  tier->Heartbeat();
  EXPECT_EQ(tier->HealthOf(1), ShardHealth::kDead);
  tier->Heartbeat();
  EXPECT_EQ(tier->HealthOf(1), ShardHealth::kProbation);
  EXPECT_FALSE(tier->router()->IsLive(1));  // probing, not serving

  // Two successful probes re-admit.
  tier->Heartbeat();
  EXPECT_EQ(tier->HealthOf(1), ShardHealth::kProbation);
  tier->Heartbeat();
  EXPECT_EQ(tier->HealthOf(1), ShardHealth::kHealthy);
  EXPECT_TRUE(tier->router()->IsLive(1));

  ShardedServiceStats stats = tier->Stats();
  EXPECT_EQ(stats.failover.kills, 1u);
  EXPECT_EQ(stats.failover.revivals, 1u);
  EXPECT_EQ(stats.failover.readmissions, 1u);
  EXPECT_GE(stats.failover.probe_successes, 2u);
  // Recovery took exactly 4 beats of the sim clock, and Stats says so.
  EXPECT_EQ(stats.failover.last_recovery_beats, 4u);
  EXPECT_EQ(stats.heartbeats, 4u);
  EXPECT_DOUBLE_EQ(stats.sim_now_ms, 4 * config.heartbeat_interval_ms);

  // The event log tells the full story in order.
  std::vector<std::string> events = tier->EventLog();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "kill shard=1 beat=0");
  EXPECT_EQ(events[1], "revive shard=1 beat=2 lose_disk=0 records=0");
  EXPECT_EQ(events[2], "readmit shard=1 beat=4");
}

TEST_F(ShardedServiceTest, CacheAffinitySurvivesSingleEjection) {
  auto tier = MakeTier();
  // The default knowledge workload spans 9 query patterns, so its
  // embeddings (and thus ring/cache keys) actually spread across shards —
  // point lookups with different literals would quantize to one key.
  const std::vector<std::string> sqls = trained_->DefaultKnowledgeSqls();
  const uint64_t n = sqls.size();
  for (const std::string& sql : sqls) ASSERT_TRUE(tier->Explain(sql).ok());
  ShardedServiceStats pass1 = tier->Stats();
  for (const std::string& sql : sqls) ASSERT_TRUE(tier->Explain(sql).ok());
  ShardedServiceStats pass2 = tier->Stats();
  // Warm tier: every repeat is a shard-local cache hit.
  EXPECT_EQ(pass2.merged.cache_hits - pass1.merged.cache_hits, n);

  // Kill the owner of the first query's key; only ITS keys go cold.
  auto key0 = tier->KeyForSql(sqls[0]);
  ASSERT_TRUE(key0.ok());
  int victim = tier->router()->Owner(*key0);
  uint64_t victim_owned = 0;
  for (const std::string& sql : sqls) {
    auto key = tier->KeyForSql(sql);
    ASSERT_TRUE(key.ok());
    if (tier->router()->Owner(*key) == victim) ++victim_owned;
  }
  ASSERT_GE(victim_owned, 1u);
  tier->KillShard(victim);
  for (const std::string& sql : sqls) ASSERT_TRUE(tier->Explain(sql).ok());
  ShardedServiceStats after = tier->Stats();
  uint64_t pass3_hits = after.merged.cache_hits - pass2.merged.cache_hits;
  // Consistent hashing keeps every surviving shard's cache intact: at
  // most the victim's keys miss. Mod-N rehashing would cold-miss nearly
  // the whole set.
  EXPECT_GE(pass3_hits, n - victim_owned)
      << "ejection destroyed unrelated cache lines";
  // Retained histograms: the killed shard's samples still count.
  EXPECT_EQ(after.merged.completed, 3 * n);
  EXPECT_EQ(after.merged.end_to_end.count, 3 * n);
}

TEST_F(ShardedServiceTest, StallFaultAbsorbsLatencyAndErodesHealth) {
  ShardedServiceConfig config;
  config.faults = "shard.stall:p=1,lat=40";
  config.eject_after_failures = 1000;  // observe stalls without ejection
  auto tier = MakeTier(config);
  auto r = tier->Explain(QuerySet(1)[0]);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(r->failover.stall_ms, 40.0);
  EXPECT_EQ(tier->Stats().failover.stalls, 1u);

  // With a budget below the stall, the request dies of deadline — the
  // stall latency counts against the carried-over budget.
  auto starved = tier->Explain(QuerySet(1)[0], 10.0);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ShardedServiceTest, InjectedKillFaultTriggersFailover) {
  ShardedServiceConfig config;
  config.faults = "shard.kill:p=1";
  auto tier = MakeTier(config);
  auto r = tier->Explain(QuerySet(1)[0]);
  // Every live shard the request reaches gets killed by the armed fault;
  // with p=1 the whole tier dies under it.
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  ShardedServiceStats stats = tier->Stats();
  EXPECT_GE(stats.failover.injected_kills, 1u);
  EXPECT_GE(stats.failover.kills, stats.failover.injected_kills);
}

TEST_F(ShardedServiceTest, CorrectionsReplicateAndSurviveLostDisk) {
  std::string dir = UniqueDir("lose_disk");
  ShardedServiceConfig config;
  config.data_dir = dir;
  auto tier = MakeTier(config);
  ASSERT_TRUE(tier->BuildDefaultKnowledgeBase().ok());

  // Shadow of every ACKED mutation: the multiset of kb sqls that may
  // never be lost (default KB bootstrap + acked corrections).
  std::multiset<std::string> shadow = TierKbSqls(*tier);

  // Find a victim with at least one correction, then keep correcting
  // until several acked corrections landed on it.
  int victim = -1;
  for (const std::string& sql : QuerySet(10, /*salt=*/100)) {
    auto r = tier->Explain(sql);
    ASSERT_TRUE(r.ok()) << r.status();
    Status ack = tier->IncorporateCorrection(*r);
    ASSERT_TRUE(ack.ok()) << ack;
    shadow.insert(r->result.outcome.sql);
    if (victim < 0) victim = r->failover.final_shard;
  }
  ASSERT_GE(victim, 0);
  EXPECT_GE(tier->Stats().failover.replications, 10u);

  // Kill the victim AND wipe its disk; the rebuild has only the replica
  // records other shards hold for it.
  tier->KillShard(victim);
  ASSERT_TRUE(tier->ReviveShard(victim, /*lose_disk=*/true).ok());
  EXPECT_EQ(tier->HealthOf(victim), ShardHealth::kProbation);

  EXPECT_EQ(TierKbSqls(*tier), shadow)
      << "acked mutation lost (or phantom resurrected) across lost disk";
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedServiceTest, ShardKillCrashMatrixAgainstShadowKb) {
  // PR-3's crash matrix extended to the tier: kill the correction's owner
  // at every position in the correction stream (after its ack), revive
  // from LOCAL disk, and compare the tier's union KB against the shadow.
  const std::vector<std::string> sqls = QuerySet(6, /*salt=*/300);
  for (size_t kill_at = 0; kill_at < sqls.size(); ++kill_at) {
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at));
    std::string dir =
        UniqueDir("matrix_" + std::to_string(kill_at));
    ShardedServiceConfig config;
    config.data_dir = dir;
    auto tier = MakeTier(config);
    ASSERT_TRUE(tier->BuildDefaultKnowledgeBase().ok());
    std::multiset<std::string> shadow = TierKbSqls(*tier);
    for (size_t i = 0; i < sqls.size(); ++i) {
      auto r = tier->Explain(sqls[i]);
      ASSERT_TRUE(r.ok()) << r.status();
      Status ack = tier->IncorporateCorrection(*r);
      ASSERT_TRUE(ack.ok()) << ack;
      shadow.insert(r->result.outcome.sql);
      if (i == kill_at) {
        int owner = r->failover.final_shard;
        tier->KillShard(owner);
        ASSERT_TRUE(tier->ReviveShard(owner).ok());
      }
    }
    EXPECT_EQ(TierKbSqls(*tier), shadow);
    std::filesystem::remove_all(dir);
  }
}

TEST_F(ShardedServiceTest, DroppedReplicationAbortsWithoutAck) {
  std::string dir = UniqueDir("repl_drop");
  ShardedServiceConfig config;
  config.data_dir = dir;
  config.faults = "replicate.drop:p=1";
  config.replicate_attempts = 2;
  auto tier = MakeTier(config);
  std::multiset<std::string> before = TierKbSqls(*tier);

  auto r = tier->Explain(QuerySet(1, /*salt=*/500)[0]);
  ASSERT_TRUE(r.ok()) << r.status();
  Status ack = tier->IncorporateCorrection(*r);
  // Every ship attempt drops, so the mutation must be ABORTED: no ack,
  // and no shard's KB (nor any disk) carries the record.
  ASSERT_FALSE(ack.ok());
  EXPECT_EQ(ack.code(), StatusCode::kUnavailable);
  EXPECT_EQ(TierKbSqls(*tier), before);
  ShardedServiceStats stats = tier->Stats();
  EXPECT_GE(stats.failover.replicate_drops, 2u);
  EXPECT_GE(stats.failover.replicate_aborts, 1u);
  EXPECT_EQ(stats.failover.replications, 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedServiceTest, ExpositionMergesShardsAndRoundTrips) {
  auto tier = MakeTier();
  for (const std::string& sql : QuerySet(4)) {
    ASSERT_TRUE(tier->Explain(sql).ok());
  }
  tier->KillShard(2);
  std::string text = tier->ExpositionText();
  auto samples = ParseExposition(text);
  ASSERT_TRUE(samples.ok()) << samples.status();

  bool saw_live = false, saw_dead_health = false, saw_e2e_count = false;
  for (const auto& s : *samples) {
    if (s.name == "htapex_live_shards") {
      saw_live = true;
      EXPECT_DOUBLE_EQ(s.value, 3.0);
    }
    if (s.name == "htapex_shard_health") {
      for (const auto& [k, v] : s.labels) {
        if (k == "shard" && v == "2") {
          saw_dead_health = true;
          for (const auto& [k2, v2] : s.labels) {
            if (k2 == "state") {
              EXPECT_EQ(v2, "dead");
            }
          }
        }
      }
    }
    if (s.name == "htapex_tier_stage_latency_ms_count") {
      for (const auto& [k, v] : s.labels) {
        if (k == "stage" && v == "end_to_end") {
          saw_e2e_count = true;
          // The dead shard's samples are retained and merged in.
          EXPECT_DOUBLE_EQ(s.value, 4.0);
        }
      }
    }
  }
  EXPECT_TRUE(saw_live);
  EXPECT_TRUE(saw_dead_health);
  EXPECT_TRUE(saw_e2e_count);
}

TEST_F(ShardedServiceTest, SameSeedSameScriptSameEventLog) {
  ShardedServiceConfig config;
  config.probation_after_beats = 2;
  config.probation_successes = 1;
  auto run = [&]() {
    auto tier = MakeTier(config);
    for (const std::string& sql : QuerySet(5)) {
      (void)tier->Explain(sql);
    }
    tier->KillShard(2);
    for (const std::string& sql : QuerySet(5)) {
      (void)tier->Explain(sql);
    }
    for (int i = 0; i < 4; ++i) tier->Heartbeat();
    return tier->EventLog();
  };
  std::vector<std::string> first = run();
  std::vector<std::string> second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace htapex
