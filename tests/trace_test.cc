#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/htap_explainer.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/explain_service.h"

namespace htapex {
namespace {

/// Shared expensive fixture: plan-only system + trained explainer with the
/// default 20-entry knowledge base (same shape as service_test's).
class TraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
    explainer_ = new HtapExplainer(system_, ExplainerConfig{});
    auto train = explainer_->TrainRouter();
    ASSERT_TRUE(train.ok()) << train.status();
    ASSERT_TRUE(explainer_->BuildDefaultKnowledgeBase().ok());
  }
  static void TearDownTestSuite() {
    delete explainer_;
    delete system_;
    explainer_ = nullptr;
    system_ = nullptr;
  }
  static HtapSystem* system_;
  static HtapExplainer* explainer_;
};

HtapSystem* TraceTest::system_ = nullptr;
HtapExplainer* TraceTest::explainer_ = nullptr;

const char kSql[] = "SELECT c_name FROM customer WHERE c_custkey = 42";
const char kSql2[] =
    "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10";

TEST(TraceApiTest, SpanNestingTimelineAndCoverage) {
  Trace trace(7, "label");
  int outer = trace.Begin("outer");
  trace.Advance(1.0);
  int inner = trace.Begin("inner");
  trace.Advance(2.0);
  trace.Event("note", "detail");
  trace.End(inner, /*simulated=*/true);
  trace.Advance(3.0);
  trace.End(outer);
  trace.AddSpan("tail", 4.0, /*simulated=*/false);

  ASSERT_EQ(trace.spans().size(), 3u);
  const Span& s_outer = trace.spans()[0];
  const Span& s_inner = trace.spans()[1];
  const Span& s_tail = trace.spans()[2];
  EXPECT_EQ(s_outer.parent, -1);
  EXPECT_EQ(s_inner.parent, 0);
  EXPECT_EQ(s_tail.parent, -1);
  EXPECT_DOUBLE_EQ(s_outer.dur_ms, 6.0);
  EXPECT_DOUBLE_EQ(s_inner.dur_ms, 2.0);
  EXPECT_TRUE(s_inner.simulated);
  EXPECT_FALSE(s_outer.simulated);
  ASSERT_EQ(s_inner.events.size(), 1u);
  EXPECT_EQ(s_inner.events[0].name, "note");
  EXPECT_DOUBLE_EQ(s_inner.events[0].at_ms, 3.0);
  EXPECT_DOUBLE_EQ(trace.total_ms(), 10.0);
  // Leaf coverage: inner (2) + tail (4); outer is composite.
  EXPECT_DOUBLE_EQ(trace.CoveredMs(), 6.0);
  ASSERT_NE(trace.Find("inner"), nullptr);
  EXPECT_EQ(trace.Find("nope"), nullptr);
  // ToString renders every span and the event.
  std::string text = trace.ToString();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("(sim)"), std::string::npos);
  EXPECT_NE(text.find("* note: detail"), std::string::npos);
}

TEST(TraceApiTest, EndUnwindsForgottenChildren) {
  Trace trace;
  int outer = trace.Begin("outer");
  trace.Begin("forgotten");
  trace.Advance(1.0);
  trace.End(outer);  // must unwind "forgotten" from the open stack too
  int next = trace.Begin("next");
  EXPECT_EQ(trace.spans()[static_cast<size_t>(next)].parent, -1);
}

TEST_F(TraceTest, FreshRequestTraceDecomposesEndToEnd) {
  ExplainService service(explainer_, ServiceConfig{});
  auto r = service.ExplainSync(kSql);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_NE(r->trace, nullptr);
  const Trace& trace = *r->trace;

  // The acceptance bar: >= 8 named spans covering >= 95% of the request.
  EXPECT_GE(trace.spans().size(), 8u);
  for (const char* name :
       {spanname::kQueueWait, spanname::kParse, spanname::kBind,
        spanname::kTpOptimize, spanname::kApOptimize, spanname::kRoute,
        spanname::kEmbed, spanname::kCacheLookup, spanname::kAnalyze,
        spanname::kRetrieve, spanname::kPrompt, spanname::kGenerate,
        spanname::kGrade}) {
    EXPECT_NE(trace.Find(name), nullptr) << "missing span " << name;
  }
  double denom = std::max(trace.total_ms(), r->end_to_end_ms());
  ASSERT_GT(denom, 0.0);
  EXPECT_GE(trace.CoveredMs() / denom, 0.95) << trace.ToString();

  // Spans recorded from measured values carry those values (to timeline
  // accumulation rounding)...
  EXPECT_NEAR(trace.Find(spanname::kEmbed)->dur_ms, r->router_encode_ms, 1e-9);
  EXPECT_NEAR(trace.Find(spanname::kCacheLookup)->dur_ms, r->cache_lookup_ms,
              1e-9);
  EXPECT_NEAR(trace.Find(spanname::kRetrieve)->dur_ms, r->retrieval.search_ms,
              1e-9);
  // ...and the generate span's simulated duration equals the LLM chain's
  // total cost (generation time + resilience overhead).
  const Span* generate = trace.Find(spanname::kGenerate);
  EXPECT_TRUE(generate->simulated);
  EXPECT_NEAR(generate->dur_ms,
              r->generation.timing.total_ms() + r->resilience_ms, 1e-6);
}

TEST_F(TraceTest, CacheHitTraceStopsAtTheProbe) {
  ExplainService service(explainer_, ServiceConfig{});
  ASSERT_TRUE(service.ExplainSync(kSql2).ok());
  auto hit = service.ExplainSync(kSql2);
  ASSERT_TRUE(hit.ok()) << hit.status();
  ASSERT_TRUE(hit->from_cache);
  ASSERT_NE(hit->trace, nullptr);
  const Trace& trace = *hit->trace;
  // The hit path still satisfies the >= 8 span bar, ends at the probe...
  EXPECT_GE(trace.spans().size(), 8u);
  EXPECT_EQ(trace.Find(spanname::kGenerate), nullptr);
  EXPECT_EQ(trace.Find(spanname::kRetrieve), nullptr);
  // ...and marks the hit as an event on the probe span.
  const Span* probe = trace.Find(spanname::kCacheLookup);
  ASSERT_NE(probe, nullptr);
  ASSERT_EQ(probe->events.size(), 1u);
  EXPECT_EQ(probe->events[0].name, "cache_hit");
}

TEST_F(TraceTest, TracingDisabledYieldsNoTrace) {
  ServiceConfig config;
  config.tracing = false;
  ExplainService service(explainer_, config);
  auto r = service.ExplainSync(kSql);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->trace, nullptr);
  EXPECT_TRUE(service.RecentTraces().empty());
  EXPECT_EQ(service.TraceSnapshot().traces, 0u);
}

TEST_F(TraceTest, SameSeedSameFaultsSameSignature) {
  // A trace's signature (names, nesting, events, simulated durations) is a
  // pure function of (seed, SQL, fault spec): wall time is excluded, fault
  // and backoff draws are keyed deterministically, and ConfigureFaults
  // resets breakers and simulated clocks between runs.
  const std::string spec = "llm.transient_error:p=0.6;llm.timeout:p=0.2";
  auto run = [&](Trace* trace) {
    EXPECT_TRUE(explainer_->ConfigureFaults(spec, 1337).ok());
    auto r = explainer_->Explain(kSql, trace);
    ASSERT_TRUE(r.ok()) << r.status();
  };
  Trace first, second;
  run(&first);
  run(&second);
  EXPECT_EQ(first.TreeSignature(), second.TreeSignature());
  // Under 60%/20% fault pressure the ladder must have left retry events in
  // the signature — otherwise this test degenerates to comparing two
  // fault-free traces.
  EXPECT_NE(first.TreeSignature().find("attempt"), std::string::npos)
      << first.TreeSignature();
  // Restore a fault-free explainer for later tests sharing the fixture.
  ASSERT_TRUE(explainer_->ConfigureFaults("off", 42).ok());
}

TEST_F(TraceTest, DifferentFaultSeedsChangeTheSignature) {
  const std::string spec = "llm.transient_error:p=0.5";
  Trace first, second;
  ASSERT_TRUE(explainer_->ConfigureFaults(spec, 1).ok());
  ASSERT_TRUE(explainer_->Explain(kSql, &first).ok());
  ASSERT_TRUE(explainer_->ConfigureFaults(spec, 2).ok());
  ASSERT_TRUE(explainer_->Explain(kSql, &second).ok());
  // Different seeds draw different fault transcripts; the signatures are
  // overwhelmingly likely to differ (p=0.5 per attempt). If this ever
  // flakes the spec's rate should go up, not the assertion away.
  EXPECT_NE(first.TreeSignature(), second.TreeSignature());
  ASSERT_TRUE(explainer_->ConfigureFaults("off", 42).ok());
}

TEST_F(TraceTest, SlowTraceThresholdCountsAndKeepsServing) {
  ServiceConfig config;
  config.slow_trace_ms = 1e-9;  // everything is "slow"
  ExplainService service(explainer_, config);
  ASSERT_TRUE(service.ExplainSync(kSql).ok());
  ASSERT_TRUE(service.ExplainSync(kSql2).ok());
  TraceMetrics::Stats stats = service.TraceSnapshot();
  EXPECT_EQ(stats.traces, 2u);
  EXPECT_EQ(stats.slow_traces, 2u);

  // A sane threshold leaves the counter alone.
  ServiceConfig quiet;
  quiet.slow_trace_ms = 1e12;
  ExplainService quiet_service(explainer_, quiet);
  ASSERT_TRUE(quiet_service.ExplainSync(kSql).ok());
  EXPECT_EQ(quiet_service.TraceSnapshot().slow_traces, 0u);
}

TEST_F(TraceTest, RecentTracesNewestFirstBoundedByRing) {
  ServiceConfig config;
  config.num_workers = 1;  // deterministic completion order
  config.trace_ring = 3;
  config.cache_enabled = false;
  ExplainService service(explainer_, config);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.ExplainSync(i % 2 == 0 ? kSql : kSql2).ok());
  }
  auto recent = service.RecentTraces();
  ASSERT_EQ(recent.size(), 3u);
  // Ids are assigned in submission order; the ring keeps the last 3,
  // newest first.
  EXPECT_EQ(recent[0]->id(), 5u);
  EXPECT_EQ(recent[1]->id(), 4u);
  EXPECT_EQ(recent[2]->id(), 3u);
}

TEST_F(TraceTest, ServiceExpositionRoundTripsThroughParser) {
  ExplainService service(explainer_, ServiceConfig{});
  ASSERT_TRUE(service.ExplainSync(kSql).ok());
  ASSERT_TRUE(service.ExplainSync(kSql).ok());  // one hit
  std::string text = service.ExpositionText();
  auto parsed = ParseExposition(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  EXPECT_GE(parsed->size(), 50u);
  // Spot-check a counter value survives the round trip.
  bool found = false;
  for (const ExpositionSample& s : *parsed) {
    if (s.name == "htapex_requests_total") {
      found = true;
      EXPECT_DOUBLE_EQ(s.value, 2.0);
    }
  }
  EXPECT_TRUE(found);
  // Every span family sample carries a span label from the taxonomy.
  std::set<std::string> span_labels;
  for (const ExpositionSample& s : *parsed) {
    if (s.name.rfind("htapex_span_latency_ms", 0) == 0) {
      for (const auto& [k, v] : s.labels) {
        if (k == "span") span_labels.insert(v);
      }
    }
  }
  EXPECT_EQ(span_labels.size(),
            static_cast<size_t>(TraceMetrics::kNumSpanNames));
}

TEST(ExpositionTest, BuilderEscapesAndParserRoundTrips) {
  ExpositionBuilder b;
  b.Counter("demo_total", "a counter", 3, {{"kind", "a\"b\\c\nd"}});
  b.Gauge("demo_gauge", "a gauge", -1.5);
  LatencyHistogram hist;
  hist.Record(2.0);
  hist.Record(4.0);
  b.Summary("demo_ms", "a summary", hist.Snap(), {{"stage", "x"}});
  auto parsed = ParseExposition(b.Text());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // counter + gauge + 3 quantiles + _count + _sum = 7 samples.
  ASSERT_EQ(parsed->size(), 7u);
  EXPECT_EQ((*parsed)[0].name, "demo_total");
  ASSERT_EQ((*parsed)[0].labels.size(), 1u);
  EXPECT_EQ((*parsed)[0].labels[0].second, "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ((*parsed)[1].value, -1.5);
  EXPECT_EQ((*parsed)[5].name, "demo_ms_count");
  EXPECT_DOUBLE_EQ((*parsed)[5].value, 2.0);
  EXPECT_EQ((*parsed)[6].name, "demo_ms_sum");
  EXPECT_DOUBLE_EQ((*parsed)[6].value, 6.0);
}

TEST(ExpositionTest, MalformedTextRejected) {
  // A sample whose family was never declared with # TYPE.
  EXPECT_FALSE(ParseExposition("undeclared_total 1\n").ok());
  // Bad metric name.
  EXPECT_FALSE(
      ParseExposition("# TYPE 9bad counter\n9bad 1\n").ok());
  // Unterminated label value.
  EXPECT_FALSE(ParseExposition("# TYPE a counter\na{k=\"v} 1\n").ok());
  // Unquoted label value.
  EXPECT_FALSE(ParseExposition("# TYPE a counter\na{k=v} 1\n").ok());
  // Value is not a number.
  EXPECT_FALSE(ParseExposition("# TYPE a counter\na twelve\n").ok());
  // Missing value entirely.
  EXPECT_FALSE(ParseExposition("# TYPE a counter\na\n").ok());
  // Unknown metric type in the header.
  EXPECT_FALSE(ParseExposition("# TYPE a enum\na 1\n").ok());
  // The well-formed version of the same text parses.
  EXPECT_TRUE(ParseExposition("# TYPE a counter\na{k=\"v\"} 1\n").ok());
}

TEST(TraceMetricsTest, CanonicalSpansRecordedUnknownCounted) {
  TraceMetrics metrics;
  Trace trace;
  trace.AddSpan(spanname::kParse, 1.0, false);
  trace.AddSpan(spanname::kGenerate, 100.0, true);
  trace.AddSpan("mystery_stage", 5.0, false);
  metrics.Record(trace);
  metrics.RecordSpan(spanname::kKbInsert, 2.0);
  metrics.RecordSpan("another_mystery", 2.0);

  TraceMetrics::Stats stats = metrics.Snap();
  EXPECT_EQ(stats.traces, 1u);
  EXPECT_EQ(stats.unknown_spans, 2u);
  ASSERT_EQ(stats.spans.size(),
            static_cast<size_t>(TraceMetrics::kNumSpanNames));
  auto hist_of = [&](const char* name) -> const LatencyHistogram::Snapshot& {
    for (const auto& s : stats.spans) {
      if (std::string(s.name) == name) return s.hist;
    }
    static LatencyHistogram::Snapshot empty;
    return empty;
  };
  EXPECT_EQ(hist_of(spanname::kParse).count, 1u);
  EXPECT_EQ(hist_of(spanname::kGenerate).count, 1u);
  EXPECT_EQ(hist_of(spanname::kKbInsert).count, 1u);
  // The synthetic whole-request sample.
  EXPECT_EQ(hist_of(spanname::kTotal).count, 1u);
  EXPECT_NEAR(hist_of(spanname::kTotal).sum_ms, 106.0, 1.0);
}

TEST(TraceRingTest, KeepsTheLastNNewestFirst) {
  TraceRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    ring.Push(std::make_shared<const Trace>(i, "t"));
  }
  auto recent = ring.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0]->id(), 10u);
  EXPECT_EQ(recent[1]->id(), 9u);
  EXPECT_EQ(recent[2]->id(), 8u);
  EXPECT_EQ(recent[3]->id(), 7u);
  // A zero-capacity request degrades to a one-slot ring, never UB.
  TraceRing tiny(0);
  tiny.Push(std::make_shared<const Trace>(1, "t"));
  EXPECT_EQ(tiny.Recent().size(), 1u);
}

TEST(MetricsRegressionTest, SingleSampleHistogramQuantilesStayInRange) {
  // Regression: with one sample the interpolated quantiles used to be able
  // to leave [min, max] (bucket-edge extrapolation); Snap now clamps them.
  LatencyHistogram hist;
  hist.Record(5.0);
  auto snap = hist.Snap();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.p50_ms, snap.min_ms);
  EXPECT_LE(snap.p50_ms, snap.max_ms);
  EXPECT_GE(snap.p95_ms, snap.min_ms);
  EXPECT_LE(snap.p95_ms, snap.max_ms);
  EXPECT_GE(snap.p99_ms, snap.min_ms);
  EXPECT_LE(snap.p99_ms, snap.max_ms);
  EXPECT_NEAR(snap.min_ms, 5.0, 0.01);
  EXPECT_NEAR(snap.max_ms, 5.0, 0.01);
}

}  // namespace
}  // namespace htapex
