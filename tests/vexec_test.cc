// Vectorized executor tests: morsel dispatcher / worker pool concurrency
// (run under TSan in CI), operator coverage through the vectorized path,
// and row-vs-vectorized parity independent of worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/kernels.h"
#include "engine/htap_system.h"
#include "engine/morsel.h"

namespace htapex {
namespace {

TEST(MorselDispatcherTest, CoversRangeExactlyOnce) {
  MorselDispatcher dispatcher(10000, 1024);
  EXPECT_EQ(dispatcher.morsel_count(), 10u);
  std::vector<Morsel> claimed;
  Morsel m;
  while (dispatcher.Next(&m)) claimed.push_back(m);
  ASSERT_EQ(claimed.size(), 10u);
  size_t expected_begin = 0;
  for (size_t i = 0; i < claimed.size(); ++i) {
    EXPECT_EQ(claimed[i].index, i);
    EXPECT_EQ(claimed[i].begin, expected_begin);
    expected_begin = claimed[i].end;
  }
  EXPECT_EQ(expected_begin, 10000u);  // last morsel is the short tail
  EXPECT_FALSE(dispatcher.Next(&m));  // stays exhausted
}

TEST(MorselDispatcherTest, EmptyTableYieldsNoMorsels) {
  MorselDispatcher dispatcher(0, 1024);
  EXPECT_EQ(dispatcher.morsel_count(), 0u);
  Morsel m;
  EXPECT_FALSE(dispatcher.Next(&m));
}

TEST(MorselDispatcherTest, ConcurrentClaimsArePartition) {
  // Hammer the dispatcher from several threads; every morsel index must be
  // claimed exactly once. (This test is the TSan probe for the dispatcher.)
  MorselDispatcher dispatcher(100 * 64, 64);
  std::vector<std::vector<size_t>> per_thread(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&dispatcher, &per_thread, t] {
      Morsel m;
      while (dispatcher.Next(&m)) per_thread[static_cast<size_t>(t)].push_back(m.index);
    });
  }
  for (auto& t : threads) t.join();
  std::set<size_t> seen;
  size_t total = 0;
  for (const auto& claimed : per_thread) {
    total += claimed.size();
    seen.insert(claimed.begin(), claimed.end());
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(WorkerPoolTest, RunsEveryWorkerAndReusesThreads) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  // Several parallel regions back to back: each runs fn once per worker.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> calls{0};
    std::vector<std::atomic<int>> per_worker(3);
    pool.Run([&](int worker_id) {
      per_worker[static_cast<size_t>(worker_id)].fetch_add(1);
      calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 3);
    for (int w = 0; w < 3; ++w) EXPECT_EQ(per_worker[static_cast<size_t>(w)].load(), 1);
  }
}

TEST(WorkerPoolTest, WorkersShareADispatcher) {
  // The real usage shape: one dispatcher drained by the pool. Under TSan
  // this exercises dispatcher + pool together.
  WorkerPool pool(4);
  for (int round = 0; round < 20; ++round) {
    MorselDispatcher dispatcher(977 * 8, 977);
    std::atomic<size_t> rows{0};
    pool.Run([&](int) {
      Morsel m;
      while (dispatcher.Next(&m)) rows.fetch_add(m.end - m.begin);
    });
    EXPECT_EQ(rows.load(), 977u * 8u);
  }
}

TEST(WorkerPoolTest, DestructionWithoutRunIsClean) {
  WorkerPool pool(2);  // spawn and immediately tear down
}

/// One small loaded system shared by the execution tests; vec_workers=3
/// forces the worker pool even on single-core CI machines.
class VecExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.stats_scale_factor = 0.02;
    config.data_scale_factor = 0.02;
    config.vec_workers = 3;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  /// Runs the AP plan through both executors and asserts byte-identical
  /// fingerprints and identical per-node ExecStats.
  static void ExpectParity(const std::string& sql) {
    auto query = system_->Bind(sql);
    ASSERT_TRUE(query.ok()) << sql << ": " << query.status();
    auto plans = system_->PlanBoth(*query);
    ASSERT_TRUE(plans.ok()) << sql;
    ExecStats row_stats, vec_stats;
    auto row_res =
        system_->ExecuteWithMode(ExecMode::kRow, plans->ap, *query, &row_stats);
    auto vec_res = system_->ExecuteWithMode(ExecMode::kVectorized, plans->ap,
                                            *query, &vec_stats);
    ASSERT_TRUE(row_res.ok()) << sql << ": " << row_res.status();
    ASSERT_TRUE(vec_res.ok()) << sql << ": " << vec_res.status();
    EXPECT_EQ(row_res->Fingerprint(), vec_res->Fingerprint()) << sql;
    EXPECT_EQ(row_stats.actual_rows.size(), vec_stats.actual_rows.size())
        << sql;
    for (const auto& [node, rows] : row_stats.actual_rows) {
      auto it = vec_stats.actual_rows.find(node);
      ASSERT_NE(it, vec_stats.actual_rows.end())
          << sql << " missing stats for " << PlanOpName(node->op);
      EXPECT_EQ(it->second, rows) << sql << " " << PlanOpName(node->op);
    }
  }

  static HtapSystem* system_;
};

HtapSystem* VecExecutorTest::system_ = nullptr;

TEST_F(VecExecutorTest, OperatorCoverageParity) {
  const char* queries[] = {
      // Typed-mask scan + typed fused aggregation (int and double sums).
      "SELECT COUNT(*), SUM(o_totalprice), MIN(o_totalprice), "
      "MAX(o_totalprice) FROM orders WHERE o_totalprice > 50000",
      "SELECT COUNT(*), SUM(o_custkey), AVG(o_custkey) FROM orders "
      "WHERE o_custkey BETWEEN 100 AND 900",
      // String predicate: per-row fallback path inside the morsel loop.
      "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'",
      "SELECT COUNT(*) FROM customer WHERE c_name LIKE 'customer#0000001%'",
      // Grouped (generic fused) aggregation, with and without joins.
      "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer "
      "GROUP BY c_nationkey ORDER BY c_nationkey",
      "SELECT n_name, COUNT(*) FROM nation, customer "
      "WHERE n_nationkey = c_nationkey GROUP BY n_name",
      // Join pipeline feeding a bare scan chain (multi-morsel probe side).
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_totalprice > 100000",
      // Three-way join chain.
      "SELECT COUNT(*) FROM customer, nation, orders "
      "WHERE o_custkey = c_custkey AND n_nationkey = c_nationkey "
      "AND n_name = 'egypt'",
      // Top-N (bounded heap) with ties on the sort key, plus offset.
      "SELECT o_orderkey, o_orderstatus FROM orders "
      "ORDER BY o_orderstatus LIMIT 10 OFFSET 3",
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC, o_orderkey LIMIT 20",
      // Sort without limit, projection arithmetic, DISTINCT aggregate.
      "SELECT n_name FROM nation ORDER BY n_name",
      "SELECT o_orderkey, o_totalprice * 2 FROM orders "
      "WHERE o_orderkey < 50 ORDER BY o_orderkey",
      "SELECT COUNT(DISTINCT c_nationkey) FROM customer",
      // IN list and OR predicates.
      "SELECT COUNT(*) FROM customer WHERE c_nationkey IN (1, 3, 5, 7)",
      "SELECT COUNT(*) FROM customer WHERE c_acctbal < 0 OR c_nationkey = 4",
  };
  for (const char* sql : queries) ExpectParity(sql);
}

TEST_F(VecExecutorTest, SingleWorkerMatchesMultiWorker) {
  // Same loaded data, vec_workers=1 (inline, no pool): results and stats
  // must be identical to the row oracle there too, which transitively pins
  // worker-count independence.
  HtapSystem single;
  HtapConfig config;
  config.stats_scale_factor = 0.02;
  config.data_scale_factor = 0.02;
  config.vec_workers = 1;
  ASSERT_TRUE(single.Init(config).ok());
  const char* queries[] = {
      "SELECT COUNT(*), SUM(o_totalprice) FROM orders "
      "WHERE o_totalprice > 50000",
      "SELECT c_nationkey, COUNT(*) FROM customer GROUP BY c_nationkey",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
  };
  for (const char* sql : queries) {
    auto query = single.Bind(sql);
    ASSERT_TRUE(query.ok()) << sql;
    auto plans = single.PlanBoth(*query);
    ASSERT_TRUE(plans.ok()) << sql;
    auto row_res = single.ExecuteWithMode(ExecMode::kRow, plans->ap, *query);
    auto vec_res =
        single.ExecuteWithMode(ExecMode::kVectorized, plans->ap, *query);
    ASSERT_TRUE(row_res.ok() && vec_res.ok()) << sql;
    EXPECT_EQ(row_res->Fingerprint(), vec_res->Fingerprint()) << sql;

    // And the multi-worker system produces the same fingerprint on its own
    // (identically seeded) copy of the data.
    auto multi_query = system_->Bind(sql);
    ASSERT_TRUE(multi_query.ok());
    auto multi_plans = system_->PlanBoth(*multi_query);
    ASSERT_TRUE(multi_plans.ok());
    auto multi_res = system_->ExecuteWithMode(ExecMode::kVectorized,
                                              multi_plans->ap, *multi_query);
    ASSERT_TRUE(multi_res.ok()) << sql;
    EXPECT_EQ(multi_res->Fingerprint(), vec_res->Fingerprint()) << sql;
  }
}

TEST_F(VecExecutorTest, ProbeModesAgreeAcrossWorkersAndBackends) {
  // The batch probe (flat JoinTable, gathered keys, late materialization)
  // and the row-at-a-time baseline must both hold the row-oracle parity
  // contract — at 1 and 3 workers and with SIMD kernels forced off (the
  // scalar backend hashes through a different code path that must still be
  // bit-identical to Value::Hash).
  const char* queries[] = {
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_totalprice > 100000",
      "SELECT n_name, COUNT(*), SUM(o_totalprice) FROM nation, customer, "
      "orders WHERE o_custkey = c_custkey AND n_nationkey = c_nationkey "
      "GROUP BY n_name ORDER BY n_name",
      // String equi-key: HashBytes path through the gathered probe.
      "SELECT COUNT(*) FROM nation, customer "
      "WHERE n_name = c_mktsegment",
      // Empty build side: the probe spine must cut without running the
      // scan, with identical ExecStats node sets on both executors.
      "SELECT COUNT(*) FROM nation, customer "
      "WHERE n_nationkey = c_nationkey AND n_name = 'nosuchnation'",
  };
  HtapSystem single;
  HtapConfig config;
  config.stats_scale_factor = 0.02;
  config.data_scale_factor = 0.02;
  config.vec_workers = 1;
  ASSERT_TRUE(single.Init(config).ok());
  const kernels::Backend native = kernels::ActiveBackend();
  for (VecProbeMode mode : {VecProbeMode::kBatch, VecProbeMode::kRowAtATime}) {
    system_->vec_executor()->set_probe_mode(mode);
    single.vec_executor()->set_probe_mode(mode);
    for (const char* sql : queries) {
      ExpectParity(sql);  // 3 workers
      auto query = single.Bind(sql);
      ASSERT_TRUE(query.ok()) << sql;
      auto plans = single.PlanBoth(*query);
      ASSERT_TRUE(plans.ok()) << sql;
      auto row_res = single.ExecuteWithMode(ExecMode::kRow, plans->ap, *query);
      auto vec_res =
          single.ExecuteWithMode(ExecMode::kVectorized, plans->ap, *query);
      ASSERT_TRUE(row_res.ok() && vec_res.ok()) << sql;
      EXPECT_EQ(row_res->Fingerprint(), vec_res->Fingerprint()) << sql;
    }
    ASSERT_TRUE(kernels::ForceBackendForTest(kernels::Backend::kScalar));
    for (const char* sql : queries) ExpectParity(sql);
    ASSERT_TRUE(kernels::ForceBackendForTest(native));
  }
  system_->vec_executor()->set_probe_mode(VecProbeMode::kBatch);
}

TEST_F(VecExecutorTest, VectorizedRejectsTpPlans) {
  auto query = system_->Bind("SELECT COUNT(*) FROM nation");
  ASSERT_TRUE(query.ok());
  auto plans = system_->PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  auto res =
      system_->ExecuteWithMode(ExecMode::kVectorized, plans->tp, *query);
  EXPECT_FALSE(res.ok());
}

TEST_F(VecExecutorTest, RunQueryCrossChecksThroughVectorizedPath) {
  // config.ap_exec_mode defaults to kVectorized, so RunQuery's TP-vs-AP
  // fingerprint cross-check exercises row(TP) vs vectorized(AP).
  ASSERT_EQ(system_->config().ap_exec_mode, ExecMode::kVectorized);
  auto outcome = system_->RunQuery(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "WHERE o_totalprice > 100000 ORDER BY o_orderkey LIMIT 25");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->results_match);
}

}  // namespace
}  // namespace htapex
