#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/report.h"
#include "sql/parser.h"

namespace htapex {
namespace {

TEST(ReportTest, RendersAllSections) {
  HtapSystem system;
  HtapConfig config;
  config.data_scale_factor = 0.0;
  ASSERT_TRUE(system.Init(config).ok());
  HtapExplainer explainer(&system, ExplainerConfig{});
  ASSERT_TRUE(explainer.TrainRouter().ok());
  ASSERT_TRUE(explainer.BuildDefaultKnowledgeBase().ok());
  auto result = explainer.Explain(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_orderstatus = 'p'");
  ASSERT_TRUE(result.ok());
  ReportOptions options;
  options.include_grading = true;
  std::string md = RenderExplainReport(explainer, *result, options);
  EXPECT_NE(md.find("# Query performance explanation"), std::string::npos);
  EXPECT_NE(md.find("```sql"), std::string::npos);
  EXPECT_NE(md.find("## TP plan"), std::string::npos);
  EXPECT_NE(md.find("self="), std::string::npos);  // latency annotation
  EXPECT_NE(md.find("## Retrieved knowledge"), std::string::npos);
  EXPECT_NE(md.find("- grade:"), std::string::npos);
  EXPECT_NE(md.find("| end to end |"), std::string::npos);
  // Section toggles work.
  ReportOptions bare;
  bare.include_plans = false;
  bare.include_retrieval = false;
  bare.include_grading = false;
  bare.include_timing = false;
  std::string small = RenderExplainReport(explainer, *result, bare);
  EXPECT_EQ(small.find("## TP plan"), std::string::npos);
  EXPECT_LT(small.size(), md.size());
}

/// Parser robustness: random token soup must produce a Status error (or a
/// valid statement), never a crash or hang.
TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const char* vocab[] = {"SELECT", "FROM",   "WHERE", "GROUP", "BY",
                         "ORDER",  "LIMIT",  "AND",   "OR",    "NOT",
                         "IN",     "BETWEEN","LIKE",  "(",     ")",
                         ",",      "*",      "=",     "<",     ">=",
                         "customer", "c_name", "o_orderkey", "42", "3.14",
                         "'egypt'", "COUNT",  "SUM",  "substring", ".",
                         "IS",     "NULL",   "HAVING", "DISTINCT", "-",
                         ";",      "+",      "/",     "AS",    "JOIN"};
  Rng rng(31415);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    int len = static_cast<int>(rng.Uniform(1, 25));
    for (int i = 0; i < len; ++i) {
      sql += vocab[rng.Uniform(0, 39)];
      sql += ' ';
    }
    auto result = ParseSelect(sql);
    if (result.ok()) ++parsed_ok;
  }
  // Most soups are invalid; a handful parse. Either way: no crash.
  EXPECT_LT(parsed_ok, 3000);
}

/// Lexer robustness: random bytes.
TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(2718);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string sql;
    int len = static_cast<int>(rng.Uniform(0, 60));
    for (int i = 0; i < len; ++i) {
      sql.push_back(static_cast<char>(rng.Uniform(32, 126)));
    }
    (void)ParseSelect(sql);  // must return, whatever the outcome
  }
  SUCCEED();
}

}  // namespace
}  // namespace htapex
