#include <gtest/gtest.h>

#include "core/htap_explainer.h"
#include "workload/query_generator.h"
#include "workload/study_sim.h"

namespace htapex {
namespace {

constexpr const char* kExample1 =
    "SELECT COUNT(*) FROM customer, nation, orders "
    "WHERE SUBSTRING(c_phone, 1, 2) IN ('20','40','22','30','39','42','21') "
    "AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
    "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
    "AND n_nationkey = c_nationkey";

class ExplainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
    explainer_ = new HtapExplainer(system_, ExplainerConfig{});
    auto train = explainer_->TrainRouter();
    ASSERT_TRUE(train.ok()) << train.status();
    ASSERT_GT(train->train_accuracy, 0.9);
    ASSERT_TRUE(explainer_->BuildDefaultKnowledgeBase().ok());
  }
  static void TearDownTestSuite() {
    delete explainer_;
    delete system_;
    explainer_ = nullptr;
    system_ = nullptr;
  }
  static HtapSystem* system_;
  static HtapExplainer* explainer_;
};

HtapSystem* ExplainerTest::system_ = nullptr;
HtapExplainer* ExplainerTest::explainer_ = nullptr;

TEST_F(ExplainerTest, DefaultKnowledgeBaseHas20Entries) {
  EXPECT_EQ(explainer_->knowledge_base().size(), 20u);  // the paper's setting
  for (const KbEntry* e : explainer_->knowledge_base().Entries()) {
    EXPECT_EQ(e->embedding.size(), 16u);
    EXPECT_FALSE(e->expert_explanation.empty());
    EXPECT_FALSE(e->tp_plan_json.empty());
  }
}

TEST_F(ExplainerTest, ExplainExample1EndToEnd) {
  auto result = explainer_->Explain(kExample1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->outcome.faster, EngineKind::kAp);
  EXPECT_EQ(result->embedding.size(), 16u);
  EXPECT_EQ(result->retrieval.items.size(), 2u);  // K=2 default
  EXPECT_FALSE(result->generation.claims.is_none);
  EXPECT_EQ(result->grade.grade, ExplanationGrade::kAccurate)
      << result->grade.reason;
  // The prompt the model saw contains the retrieved expert knowledge and
  // the question plans.
  std::string prompt_text = result->prompt.Render();
  EXPECT_NE(prompt_text.find("KNOWLEDGE 2:"), std::string::npos);
  EXPECT_NE(prompt_text.find("new execution result: AP is faster"),
            std::string::npos);
  // End-to-end time is dominated by (simulated) generation, like the paper.
  EXPECT_GT(result->end_to_end_ms(), 1000.0);
  EXPECT_LT(result->router_encode_ms + result->retrieval.search_ms, 50.0);
}

TEST_F(ExplainerTest, ExplanationTextMatchesStructuredClaims) {
  auto result = explainer_->Explain(kExample1);
  ASSERT_TRUE(result.ok());
  ExplanationClaims parsed = ClaimsFromText(result->generation.text);
  EXPECT_EQ(parsed.is_none, result->generation.claims.is_none);
  EXPECT_EQ(parsed.claimed_faster, result->generation.claims.claimed_faster);
  EXPECT_EQ(parsed.factors.size(), result->generation.claims.factors.size());
}

TEST_F(ExplainerTest, FeedbackLoopFixesAFailingQuery) {
  // Find a failing query in the mixed workload, incorporate the expert's
  // correction, and verify the same query now grades accurate.
  QueryGenerator gen(system_->config().stats_scale_factor, 0xfeed);
  std::string failing_sql;
  for (int i = 0; i < 200 && failing_sql.empty(); ++i) {
    GeneratedQuery gq = gen.Generate(QueryPattern::kExotic);
    auto result = explainer_->Explain(gq.sql);
    ASSERT_TRUE(result.ok());
    if (result->grade.grade != ExplanationGrade::kAccurate) {
      failing_sql = gq.sql;
      ASSERT_TRUE(explainer_->IncorporateCorrection(*result).ok());
    }
  }
  ASSERT_FALSE(failing_sql.empty()) << "no failing exotic query found";
  auto after = explainer_->Explain(failing_sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->grade.grade, ExplanationGrade::kAccurate)
      << after->grade.reason;
}

TEST_F(ExplainerTest, FollowUpAnswers) {
  auto result = explainer_->Explain(kExample1);
  ASSERT_TRUE(result.ok());
  std::string a = explainer_->AnswerFollowUp(
      *result, "why does the index on c_phone not help with substring?");
  EXPECT_NE(a.find("SUBSTRING"), std::string::npos);
  std::string b = explainer_->AnswerFollowUp(
      *result, "can I compare the cost numbers of the two plans?");
  EXPECT_NE(b.find("not comparable"), std::string::npos);
  std::string c = explainer_->AnswerFollowUp(*result, "so why is it faster?");
  EXPECT_NE(c.find("AP"), std::string::npos);
}

TEST_F(ExplainerTest, NoRagConfigUsesDbgPtBehavior) {
  ExplainerConfig config;
  config.use_rag = false;
  HtapExplainer baseline(system_, config);
  auto result = baseline.Explain(kExample1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->retrieval.items.empty());
  EXPECT_TRUE(result->prompt.knowledge.empty());
}

TEST_F(ExplainerTest, ParticipantStudyShape) {
  auto example = explainer_->Explain(kExample1);
  ASSERT_TRUE(example.ok());
  ParticipantStudy study(2026, 12);
  StudyReport report = study.Run(*example);
  EXPECT_LT(report.with_llm.avg_minutes, report.without_llm.avg_minutes);
  EXPECT_GT(report.with_llm.correct_fraction,
            report.without_llm.correct_fraction);
  EXPECT_LT(report.with_llm.avg_difficulty_explanation,
            report.without_llm.avg_difficulty_plans);
  EXPECT_GT(report.corrected_after_explanation, 0.9);
  // Deterministic in the seed.
  StudyReport again = ParticipantStudy(2026, 12).Run(*example);
  EXPECT_DOUBLE_EQ(report.with_llm.avg_minutes, again.with_llm.avg_minutes);
}

TEST_F(ExplainerTest, RetrievalKIsRespected) {
  ExplainerConfig config;
  config.retrieval_k = 4;
  HtapExplainer k4(system_, config);
  ASSERT_TRUE(k4.TrainRouter().ok());
  ASSERT_TRUE(k4.BuildDefaultKnowledgeBase().ok());
  auto result = k4.Explain(kExample1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->retrieval.items.size(), 4u);
}

}  // namespace
}  // namespace htapex
