#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/frozen_tree_cnn.h"
#include "nn/tree_cnn.h"
#include "router/plan_featurizer.h"
#include "router/smart_router.h"

namespace htapex {
namespace {

PlanTreeFeatures RandomTree(Rng* rng, int nodes, int dim) {
  PlanTreeFeatures t;
  t.num_nodes = nodes;
  t.feature_dim = dim;
  t.x.resize(static_cast<size_t>(nodes * dim));
  for (double& v : t.x) v = rng->UniformReal(0, 1);
  t.left.assign(static_cast<size_t>(nodes), -1);
  t.right.assign(static_cast<size_t>(nodes), -1);
  // A left-deep chain with occasional right children (pre-order valid).
  for (int i = 0; i + 1 < nodes; ++i) {
    t.left[static_cast<size_t>(i)] = i + 1;
  }
  return t;
}

PairExample RandomExample(Rng* rng, int dim, int label) {
  PairExample ex;
  ex.tp = RandomTree(rng, static_cast<int>(rng->Uniform(2, 9)), dim);
  ex.ap = RandomTree(rng, static_cast<int>(rng->Uniform(2, 9)), dim);
  ex.label = label;
  return ex;
}

TEST(TreeCnnPropertyTest, DeterministicInitialization) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn a(config), b(config);
  Rng rng(1);
  PairExample ex = RandomExample(&rng, 6, 0);
  EXPECT_DOUBLE_EQ(a.PredictApFaster(ex.tp, ex.ap),
                   b.PredictApFaster(ex.tp, ex.ap));
  TreeCnn::Config other = config;
  other.seed = 99;
  TreeCnn c(other);
  EXPECT_NE(a.PredictApFaster(ex.tp, ex.ap), c.PredictApFaster(ex.tp, ex.ap));
}

TEST(TreeCnnPropertyTest, BatchLossIsOrderInvariant) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  Rng rng(2);
  std::vector<PairExample> data;
  for (int i = 0; i < 6; ++i) data.push_back(RandomExample(&rng, 6, i % 2));
  std::vector<const PairExample*> fwd, rev;
  for (const auto& ex : data) fwd.push_back(&ex);
  rev.assign(fwd.rbegin(), fwd.rend());
  TreeCnn a(config), b(config);
  double la = a.TrainBatch(fwd, 1e-3);
  double lb = b.TrainBatch(rev, 1e-3);
  EXPECT_NEAR(la, lb, 1e-9);
}

TEST(TreeCnnPropertyTest, OverfitsASingleExample) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  Rng rng(3);
  PairExample ex = RandomExample(&rng, 6, 1);
  double loss = 0;
  for (int step = 0; step < 300; ++step) {
    loss = cnn.TrainBatch({&ex}, 1e-2);
  }
  EXPECT_LT(loss, 0.01);
  EXPECT_GT(cnn.PredictApFaster(ex.tp, ex.ap), 0.98);
}

TEST(TreeCnnPropertyTest, MemorizesRandomLabels) {
  // Capacity check: a handful of random (tree, label) pairs are separable.
  TreeCnn::Config config;
  config.feature_dim = 8;
  TreeCnn cnn(config);
  Rng rng(4);
  std::vector<PairExample> data;
  for (int i = 0; i < 10; ++i) data.push_back(RandomExample(&rng, 8, i % 2));
  std::vector<const PairExample*> batch;
  for (const auto& ex : data) batch.push_back(&ex);
  for (int step = 0; step < 500; ++step) cnn.TrainBatch(batch, 5e-3);
  int correct = 0;
  for (const auto& ex : data) {
    int pred = cnn.PredictApFaster(ex.tp, ex.ap) >= 0.5 ? 1 : 0;
    correct += pred == ex.label ? 1 : 0;
  }
  EXPECT_GE(correct, 9);
}

TEST(TreeCnnPropertyTest, EmbeddingIsNonNegativeAndRightSized) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  config.embed = 8;
  TreeCnn cnn(config);
  EXPECT_EQ(cnn.pair_embedding_dim(), 16);
  Rng rng(5);
  PairExample ex = RandomExample(&rng, 6, 0);
  std::vector<double> z;
  cnn.PredictApFaster(ex.tp, ex.ap, &z);
  ASSERT_EQ(z.size(), 16u);
  for (double v : z) EXPECT_GE(v, 0.0);  // post-ReLU
}

TEST(TreeCnnPropertyTest, ProbabilityIsWellFormed) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    PairExample ex = RandomExample(&rng, 6, 0);
    double p = cnn.PredictApFaster(ex.tp, ex.ap);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(TreeCnnPropertyTest, ParameterCountMatchesConfig) {
  TreeCnn::Config config;
  config.feature_dim = 10;
  config.conv1 = 12;
  config.conv2 = 14;
  config.embed = 4;
  TreeCnn cnn(config);
  size_t expected = 3u * 10 * 12 + 12   // conv1 (self/left/right) + bias
                    + 3u * 12 * 14 + 14 // conv2
                    + 14u * 4 + 4       // dense embed
                    + 8u * 2 + 2;       // output (2E -> 2)
  EXPECT_EQ(cnn.NumParameters(), expected);
  EXPECT_EQ(cnn.ByteSize(), expected * sizeof(double));
  EXPECT_EQ(cnn.FrozenByteSize(), expected * sizeof(float));
  // The serving snapshot must stay comfortably cache-resident.
  EXPECT_LT(cnn.FrozenByteSize(), 1u << 20);
}

TEST(FrozenTreeCnnTest, MatchesMasterAfterTraining) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  Rng rng(7);
  std::vector<PairExample> data;
  for (int i = 0; i < 8; ++i) data.push_back(RandomExample(&rng, 6, i % 2));
  std::vector<const PairExample*> batch;
  for (const auto& ex : data) batch.push_back(&ex);
  for (int step = 0; step < 50; ++step) cnn.TrainBatch(batch, 5e-3);

  FrozenTreeCnn frozen(cnn);
  EXPECT_EQ(frozen.pair_embedding_dim(), cnn.pair_embedding_dim());
  for (const auto& ex : data) {
    std::vector<double> zm, zf;
    double pm = cnn.PredictApFaster(ex.tp, ex.ap, &zm);
    double pf = frozen.PredictApFaster(ex.tp, ex.ap, &zf);
    // float32 inference tracks the double master closely...
    EXPECT_NEAR(pm, pf, 1e-4);
    ASSERT_EQ(zm.size(), zf.size());
    for (size_t i = 0; i < zm.size(); ++i) EXPECT_NEAR(zm[i], zf[i], 1e-4);
    // ...and never flips the routing verdict.
    EXPECT_EQ(pm >= 0.5, pf >= 0.5);
  }
}

TEST(FrozenTreeCnnTest, BatchMatchesSingle) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  FrozenTreeCnn frozen(cnn);
  Rng rng(8);
  std::vector<PairExample> data;
  for (int i = 0; i < 5; ++i) data.push_back(RandomExample(&rng, 6, 0));
  std::vector<const PlanTreeFeatures*> tps, aps;
  for (const auto& ex : data) {
    tps.push_back(&ex.tp);
    aps.push_back(&ex.ap);
  }
  std::vector<double> p_batch;
  std::vector<std::vector<double>> z_batch;
  frozen.PredictBatch(tps, aps, &p_batch, &z_batch);
  ASSERT_EQ(p_batch.size(), data.size());
  ASSERT_EQ(z_batch.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<double> z;
    double p = frozen.PredictApFaster(data[i].tp, data[i].ap, &z);
    EXPECT_DOUBLE_EQ(p_batch[i], p);
    ASSERT_EQ(z_batch[i].size(), z.size());
    for (size_t j = 0; j < z.size(); ++j) EXPECT_DOUBLE_EQ(z_batch[i][j], z[j]);
  }
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(TreeCnnPersistenceTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "tree_cnn_roundtrip.bin";
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn a(config);
  Rng rng(9);
  PairExample ex = RandomExample(&rng, 6, 1);
  for (int step = 0; step < 20; ++step) a.TrainBatch({&ex}, 1e-2);
  ASSERT_TRUE(a.Save(path).ok());

  TreeCnn::Config other = config;
  other.seed = 99;
  TreeCnn b(other);
  ASSERT_TRUE(b.Load(path).ok());
  EXPECT_DOUBLE_EQ(a.PredictApFaster(ex.tp, ex.ap),
                   b.PredictApFaster(ex.tp, ex.ap));
  std::remove(path.c_str());
}

TEST(TreeCnnPersistenceTest, LoadRejectsTruncatedFile) {
  const std::string path = ::testing::TempDir() + "tree_cnn_truncated.bin";
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  ASSERT_TRUE(cnn.Save(path).ok());
  std::string bytes = ReadFileOrDie(path);
  ASSERT_GT(bytes.size(), 8u);
  WriteFileOrDie(path, bytes.substr(0, bytes.size() - 3));
  EXPECT_FALSE(cnn.Load(path).ok());
  // A failed load must not clobber the in-memory weights.
  Rng rng(10);
  PairExample ex = RandomExample(&rng, 6, 0);
  EXPECT_TRUE(std::isfinite(cnn.PredictApFaster(ex.tp, ex.ap)));
  std::remove(path.c_str());
}

TEST(TreeCnnPersistenceTest, LoadRejectsCorruptedByte) {
  const std::string path = ::testing::TempDir() + "tree_cnn_corrupt.bin";
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  ASSERT_TRUE(cnn.Save(path).ok());
  std::string bytes = ReadFileOrDie(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-tensor
  WriteFileOrDie(path, bytes);
  EXPECT_FALSE(cnn.Load(path).ok());
  std::remove(path.c_str());
}

TEST(TreeCnnPersistenceTest, SaveLeavesNoTempFileBehind) {
  const std::string path = ::testing::TempDir() + "tree_cnn_tmpcheck.bin";
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  ASSERT_TRUE(cnn.Save(path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(TreeCnnPropertyTest, SingleNodeTreesWork) {
  TreeCnn::Config config;
  config.feature_dim = 4;
  TreeCnn cnn(config);
  PlanTreeFeatures t;
  t.num_nodes = 1;
  t.feature_dim = 4;
  t.x = {0.5, 0.2, 0.9, 0.0};
  t.left = {-1};
  t.right = {-1};
  double p = cnn.PredictApFaster(t, t);
  EXPECT_TRUE(std::isfinite(p));
}

// --- frozen-snapshot identity (version + CRC): the contract the model
// lifecycle's hot-swap and rollback are built on ------------------------

TEST(FrozenCrcTest, EqualWeightsHashEqualAcrossRefreezes) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  Rng rng(12);
  PairExample ex = RandomExample(&rng, 6, 1);
  for (int step = 0; step < 20; ++step) cnn.TrainBatch({&ex}, 1e-2);
  // Two snapshots of the same master: distinct versions, identical CRC —
  // the CRC identifies the weights, the version identifies the publication.
  FrozenTreeCnn first(cnn, 1);
  FrozenTreeCnn second(cnn, 2);
  EXPECT_EQ(first.version(), 1u);
  EXPECT_EQ(second.version(), 2u);
  EXPECT_NE(first.crc(), 0u);
  EXPECT_EQ(first.crc(), second.crc());
}

TEST(FrozenCrcTest, CrcChangesWhenWeightsChange) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  FrozenTreeCnn before(cnn, 1);
  Rng rng(13);
  PairExample ex = RandomExample(&rng, 6, 1);
  cnn.TrainBatch({&ex}, 1e-2);  // one gradient step is enough
  FrozenTreeCnn after(cnn, 2);
  EXPECT_NE(before.crc(), after.crc());
}

TEST(FrozenCrcTest, RollbackRestoresBitIdenticalFrozenWeights) {
  SmartRouter router(7);
  Rng rng(14);
  std::vector<PairExample> data;
  for (int i = 0; i < 32; ++i) {
    data.push_back(RandomExample(&rng, kPlanFeatureDim, i % 2));
  }
  router.Train(data, 10);
  // Retain the serving weights (the lifecycle manager's keepsake), then
  // diverge the master with more training.
  std::unique_ptr<TreeCnn> retained = router.CloneMaster();
  uint64_t version_before = router.frozen_version();
  uint32_t crc_before = router.frozen_crc();
  router.Train(data, 10);
  ASSERT_NE(router.frozen_crc(), crc_before);
  // Rollback: a fresh publication (monotone version) whose float32 tensors
  // hash back to the exact pre-divergence CRC — bit-identical weights.
  ASSERT_TRUE(router.AdoptMaster(*retained).ok());
  EXPECT_GT(router.frozen_version(), version_before);
  EXPECT_EQ(router.frozen_crc(), crc_before);
  PairExample probe = RandomExample(&rng, kPlanFeatureDim, 0);
  EXPECT_DOUBLE_EQ(router.frozen_snapshot()->PredictApFaster(probe.tp, probe.ap),
                   FrozenTreeCnn(*retained, 0).PredictApFaster(probe.tp, probe.ap));
}

TEST(FrozenCrcTest, CorruptCandidateLoadLeavesServingSnapshotUntouched) {
  const std::string path = ::testing::TempDir() + "router_corrupt_cand.bin";
  SmartRouter router(7);
  ASSERT_TRUE(router.Save(path).ok());
  std::string bytes = ReadFileOrDie(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x40;
  WriteFileOrDie(path, bytes);
  uint64_t version_before = router.frozen_version();
  uint32_t crc_before = router.frozen_crc();
  // A corrupt candidate must be rejected without republishing anything:
  // same snapshot version, same CRC, still answering.
  EXPECT_FALSE(router.Load(path).ok());
  EXPECT_EQ(router.frozen_version(), version_before);
  EXPECT_EQ(router.frozen_crc(), crc_before);
  Rng rng(15);
  PairExample probe = RandomExample(&rng, kPlanFeatureDim, 0);
  EXPECT_TRUE(std::isfinite(
      router.frozen_snapshot()->PredictApFaster(probe.tp, probe.ap)));
  std::remove(path.c_str());
}

TEST(FrozenCrcTest, AdoptMasterRejectsArchitectureMismatch) {
  SmartRouter router(7);
  uint32_t crc_before = router.frozen_crc();
  TreeCnn::Config other;
  other.feature_dim = 4;  // not the router's plan-feature width
  TreeCnn misfit(other);
  Status status = router.AdoptMaster(misfit);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(router.frozen_crc(), crc_before);
}

}  // namespace
}  // namespace htapex
