#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/tree_cnn.h"

namespace htapex {
namespace {

PlanTreeFeatures RandomTree(Rng* rng, int nodes, int dim) {
  PlanTreeFeatures t;
  t.num_nodes = nodes;
  t.feature_dim = dim;
  t.x.resize(static_cast<size_t>(nodes * dim));
  for (double& v : t.x) v = rng->UniformReal(0, 1);
  t.left.assign(static_cast<size_t>(nodes), -1);
  t.right.assign(static_cast<size_t>(nodes), -1);
  // A left-deep chain with occasional right children (pre-order valid).
  for (int i = 0; i + 1 < nodes; ++i) {
    t.left[static_cast<size_t>(i)] = i + 1;
  }
  return t;
}

PairExample RandomExample(Rng* rng, int dim, int label) {
  PairExample ex;
  ex.tp = RandomTree(rng, static_cast<int>(rng->Uniform(2, 9)), dim);
  ex.ap = RandomTree(rng, static_cast<int>(rng->Uniform(2, 9)), dim);
  ex.label = label;
  return ex;
}

TEST(TreeCnnPropertyTest, DeterministicInitialization) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn a(config), b(config);
  Rng rng(1);
  PairExample ex = RandomExample(&rng, 6, 0);
  EXPECT_DOUBLE_EQ(a.PredictApFaster(ex.tp, ex.ap),
                   b.PredictApFaster(ex.tp, ex.ap));
  TreeCnn::Config other = config;
  other.seed = 99;
  TreeCnn c(other);
  EXPECT_NE(a.PredictApFaster(ex.tp, ex.ap), c.PredictApFaster(ex.tp, ex.ap));
}

TEST(TreeCnnPropertyTest, BatchLossIsOrderInvariant) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  Rng rng(2);
  std::vector<PairExample> data;
  for (int i = 0; i < 6; ++i) data.push_back(RandomExample(&rng, 6, i % 2));
  std::vector<const PairExample*> fwd, rev;
  for (const auto& ex : data) fwd.push_back(&ex);
  rev.assign(fwd.rbegin(), fwd.rend());
  TreeCnn a(config), b(config);
  double la = a.TrainBatch(fwd, 1e-3);
  double lb = b.TrainBatch(rev, 1e-3);
  EXPECT_NEAR(la, lb, 1e-9);
}

TEST(TreeCnnPropertyTest, OverfitsASingleExample) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  Rng rng(3);
  PairExample ex = RandomExample(&rng, 6, 1);
  double loss = 0;
  for (int step = 0; step < 300; ++step) {
    loss = cnn.TrainBatch({&ex}, 1e-2);
  }
  EXPECT_LT(loss, 0.01);
  EXPECT_GT(cnn.PredictApFaster(ex.tp, ex.ap), 0.98);
}

TEST(TreeCnnPropertyTest, MemorizesRandomLabels) {
  // Capacity check: a handful of random (tree, label) pairs are separable.
  TreeCnn::Config config;
  config.feature_dim = 8;
  TreeCnn cnn(config);
  Rng rng(4);
  std::vector<PairExample> data;
  for (int i = 0; i < 10; ++i) data.push_back(RandomExample(&rng, 8, i % 2));
  std::vector<const PairExample*> batch;
  for (const auto& ex : data) batch.push_back(&ex);
  for (int step = 0; step < 500; ++step) cnn.TrainBatch(batch, 5e-3);
  int correct = 0;
  for (const auto& ex : data) {
    int pred = cnn.PredictApFaster(ex.tp, ex.ap) >= 0.5 ? 1 : 0;
    correct += pred == ex.label ? 1 : 0;
  }
  EXPECT_GE(correct, 9);
}

TEST(TreeCnnPropertyTest, EmbeddingIsNonNegativeAndRightSized) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  config.embed = 8;
  TreeCnn cnn(config);
  EXPECT_EQ(cnn.pair_embedding_dim(), 16);
  Rng rng(5);
  PairExample ex = RandomExample(&rng, 6, 0);
  std::vector<double> z;
  cnn.PredictApFaster(ex.tp, ex.ap, &z);
  ASSERT_EQ(z.size(), 16u);
  for (double v : z) EXPECT_GE(v, 0.0);  // post-ReLU
}

TEST(TreeCnnPropertyTest, ProbabilityIsWellFormed) {
  TreeCnn::Config config;
  config.feature_dim = 6;
  TreeCnn cnn(config);
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    PairExample ex = RandomExample(&rng, 6, 0);
    double p = cnn.PredictApFaster(ex.tp, ex.ap);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(TreeCnnPropertyTest, ParameterCountMatchesConfig) {
  TreeCnn::Config config;
  config.feature_dim = 10;
  config.conv1 = 12;
  config.conv2 = 14;
  config.embed = 4;
  TreeCnn cnn(config);
  size_t expected = 3u * 10 * 12 + 12   // conv1 (self/left/right) + bias
                    + 3u * 12 * 14 + 14 // conv2
                    + 14u * 4 + 4       // dense embed
                    + 8u * 2 + 2;       // output (2E -> 2)
  EXPECT_EQ(cnn.NumParameters(), expected);
  EXPECT_EQ(cnn.ByteSize(), expected * sizeof(float));
}

TEST(TreeCnnPropertyTest, SingleNodeTreesWork) {
  TreeCnn::Config config;
  config.feature_dim = 4;
  TreeCnn cnn(config);
  PlanTreeFeatures t;
  t.num_nodes = 1;
  t.feature_dim = 4;
  t.x = {0.5, 0.2, 0.9, 0.0};
  t.left = {-1};
  t.right = {-1};
  double p = cnn.PredictApFaster(t, t);
  EXPECT_TRUE(std::isfinite(p));
}

}  // namespace
}  // namespace htapex
