#include <gtest/gtest.h>

#include "common/json.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace htapex {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fail = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    HTAPEX_RETURN_IF_ERROR(fail());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(3), 3);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("v");
    return Status::NotFound("no");
  };
  auto use = [&](bool ok) -> Result<int> {
    std::string s;
    HTAPEX_ASSIGN_OR_RETURN(s, make(ok));
    return static_cast<int>(s.size());
  };
  EXPECT_EQ(*use(true), 1);
  EXPECT_EQ(use(false).status().code(), StatusCode::kNotFound);
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("SELECT Foo"), "select foo");
  EXPECT_EQ(ToUpper("abc"), "ABC");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
}

TEST(StringUtilTest, Predicates) {
  EXPECT_TRUE(StartsWith("lineitem", "line"));
  EXPECT_FALSE(StartsWith("li", "line"));
  EXPECT_TRUE(EndsWith("customer", "mer"));
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(ContainsIgnoreCase("Hash Join is fast", "hash join"));
  EXPECT_FALSE(ContainsIgnoreCase("nested loop", "hash"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(FormatDouble(5.80), "5.8");
  EXPECT_EQ(FormatDouble(3.0), "3");
}

TEST(StringUtilTest, FormatMillis) {
  EXPECT_EQ(FormatMillis(5800), "5.80s");
  EXPECT_EQ(FormatMillis(310), "310ms");
  EXPECT_EQ(FormatMillis(0.05), "0.050ms");
}

TEST(StringUtilTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("machinery", "mach%"));
  EXPECT_TRUE(LikeMatch("machinery", "%ery"));
  EXPECT_TRUE(LikeMatch("machinery", "%chin%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_FALSE(LikeMatch("abc", "abcd"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("anything", "%%"));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng r(11);
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) {
    counts[r.WeightedIndex({1.0, 9.0})]++;
  }
  EXPECT_GT(counts[1], counts[0] * 4);
}

TEST(JsonTest, BuildAndDump) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("Node Type", JsonValue::String("Hash join"));
  obj.Set("Total Cost", JsonValue::Double(152.0));
  obj.Set("Plan Rows", JsonValue::Int(379));
  JsonValue plans = JsonValue::MakeArray();
  JsonValue child = JsonValue::MakeObject();
  child.Set("Node Type", JsonValue::String("Table Scan"));
  plans.Append(child);
  obj.Set("Plans", plans);
  std::string compact = obj.Dump();
  EXPECT_NE(compact.find("\"Node Type\": \"Hash join\""), std::string::npos);
  std::string py = obj.DumpPythonish();
  EXPECT_NE(py.find("'Node Type': 'Hash join'"), std::string::npos);
}

TEST(JsonTest, ParseRoundTrip) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("a", JsonValue::Int(1));
  obj.Set("b", JsonValue::Double(2.5));
  obj.Set("c", JsonValue::String("x'y\"z"));
  obj.Set("d", JsonValue::Bool(true));
  obj.Set("e", JsonValue::Null());
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::String("two"));
  obj.Set("f", arr);
  auto parsed = JsonValue::Parse(obj.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(*parsed == obj);
}

TEST(JsonTest, ParsePythonishPlan) {
  const char* plan =
      "{ 'Node Type': 'Group aggregate', 'Total Cost': 5213.0, "
      "'Plan Rows': 1, 'Plans': [ { 'Node Type': 'Table Scan', "
      "'Relation Name': 'nation', 'Plan Rows': 25 } ] }";
  auto parsed = JsonValue::Parse(plan);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetString("Node Type"), "Group aggregate");
  EXPECT_DOUBLE_EQ(parsed->GetDouble("Total Cost"), 5213.0);
  const JsonValue* plans = parsed->Find("Plans");
  ASSERT_NE(plans, nullptr);
  ASSERT_EQ(plans->array().size(), 1u);
  EXPECT_EQ(plans->array()[0].GetString("Relation Name"), "nation");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a' 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("12 34").ok());
  EXPECT_FALSE(JsonValue::Parse("'unterminated").ok());
}

TEST(JsonTest, TypedGettersWithDefaults) {
  auto parsed = JsonValue::Parse("{\"x\": 3, \"s\": \"v\", \"b\": true}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetInt("x"), 3);
  EXPECT_EQ(parsed->GetInt("missing", -1), -1);
  EXPECT_EQ(parsed->GetString("s"), "v");
  EXPECT_EQ(parsed->GetString("missing", "d"), "d");
  EXPECT_TRUE(parsed->GetBool("b"));
  EXPECT_FALSE(parsed->GetBool("missing"));
}

}  // namespace
}  // namespace htapex
