#include <gtest/gtest.h>

#include <functional>

#include "engine/htap_system.h"

namespace htapex {
namespace {

/// One shared system for all engine tests (init generates data, so build it
/// once per process).
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.stats_scale_factor = 100.0;
    config.data_scale_factor = 0.01;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static HtapSystem* system_;
};

HtapSystem* EngineTest::system_ = nullptr;

constexpr const char* kExample1 =
    "SELECT COUNT(*) FROM customer, nation, orders "
    "WHERE SUBSTRING(c_phone, 1, 2) IN ('20','40','22','30','39','42','21') "
    "AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
    "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
    "AND n_nationkey = c_nationkey";

TEST_F(EngineTest, Example1PlansHaveExpectedShapes) {
  auto outcome = system_->RunQuery(kExample1);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // TP root: Group aggregate (as in Table II); AP root: Hash aggregate.
  EXPECT_EQ(outcome->plans.tp.root->op, PlanOp::kGroupAggregate);
  EXPECT_EQ(outcome->plans.ap.root->op, PlanOp::kHashAggregate);
  // TP uses nested-loop style joins only; AP uses hash joins only.
  std::string tp_text = outcome->plans.tp.Explain();
  std::string ap_text = outcome->plans.ap.Explain();
  EXPECT_NE(tp_text.find("nested loop"), std::string::npos);
  EXPECT_EQ(tp_text.find("Hash join"), std::string::npos);
  EXPECT_NE(ap_text.find("Hash join"), std::string::npos);
  EXPECT_EQ(ap_text.find("loop"), std::string::npos);
  EXPECT_NE(ap_text.find("Columnar scan"), std::string::npos);
}

TEST_F(EngineTest, Example1LatencyShapeMatchesPaper) {
  auto outcome = system_->RunQuery(kExample1);
  ASSERT_TRUE(outcome.ok());
  // Paper: TP 5.80s, AP 310ms. Shape: AP wins by an order of magnitude,
  // TP in seconds, AP in hundreds of milliseconds.
  EXPECT_EQ(outcome->faster, EngineKind::kAp);
  EXPECT_GT(outcome->tp_latency_ms, 2000.0);
  EXPECT_LT(outcome->tp_latency_ms, 20000.0);
  EXPECT_GT(outcome->ap_latency_ms, 50.0);
  EXPECT_LT(outcome->ap_latency_ms, 1500.0);
  EXPECT_GT(outcome->speedup(), 5.0);
}

TEST_F(EngineTest, PointLookupFavorsTp) {
  auto outcome =
      system_->RunQuery("SELECT c_name FROM customer WHERE c_custkey = 42");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->faster, EngineKind::kTp);
  EXPECT_LT(outcome->tp_latency_ms, 5.0);           // index point lookup
  EXPECT_GT(outcome->ap_latency_ms, 20.0);          // pays AP startup
  ASSERT_TRUE(outcome->tp_result.has_value());
  ASSERT_EQ(outcome->tp_result->rows.size(), 1u);
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsString(), "customer#000000042");
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(EngineTest, TpUsesIndexScanForPointLookup) {
  auto query = system_->Bind("SELECT c_name FROM customer WHERE c_custkey = 7");
  ASSERT_TRUE(query.ok());
  auto plans = system_->PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  std::string tp_text = plans->tp.Explain();
  EXPECT_NE(tp_text.find("Index Scan"), std::string::npos);
  EXPECT_NE(tp_text.find("pk_customer"), std::string::npos);
}

TEST_F(EngineTest, FunctionDefeatsIndex) {
  // Create an index on c_phone (the paper's user context), then check the
  // substring predicate still cannot use it while a bare equality can.
  IndexDef idx{"idx_c_phone", "customer", {"c_phone"}, false, false};
  ASSERT_TRUE(system_->CreateIndex(idx).ok());
  auto q1 = system_->Bind(
      "SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) = '25'");
  ASSERT_TRUE(q1.ok());
  auto p1 = system_->PlanBoth(*q1);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->tp.Explain().find("idx_c_phone"), std::string::npos)
      << "substring over c_phone must not use the index";
  auto q2 = system_->Bind(
      "SELECT COUNT(*) FROM customer WHERE c_phone = '25-989-741-2988'");
  ASSERT_TRUE(q2.ok());
  auto p2 = system_->PlanBoth(*q2);
  ASSERT_TRUE(p2.ok());
  EXPECT_NE(p2->tp.Explain().find("idx_c_phone"), std::string::npos)
      << "bare equality on c_phone should use the index";
  ASSERT_TRUE(system_->DropIndex("idx_c_phone").ok());
}

TEST_F(EngineTest, CrossEngineResultsAgree) {
  const char* queries[] = {
      "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'",
      "SELECT n_name, COUNT(*) FROM nation, customer "
      "WHERE n_nationkey = c_nationkey GROUP BY n_name",
      "SELECT o_orderkey, o_totalprice FROM orders "
      "WHERE o_totalprice > 100000 ORDER BY o_orderkey LIMIT 20",
      "SELECT SUM(o_totalprice), AVG(o_totalprice), MIN(o_orderdate), "
      "MAX(o_orderdate) FROM orders WHERE o_orderstatus = 'f'",
      "SELECT c_mktsegment, COUNT(*) FROM customer "
      "GROUP BY c_mktsegment ORDER BY c_mktsegment",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND c_acctbal BETWEEN 0 AND 1000",
      "SELECT COUNT(*) FROM customer WHERE c_name LIKE 'customer#0000001%'",
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5 OFFSET 10",
  };
  for (const char* sql : queries) {
    auto outcome = system_->RunQuery(sql);
    ASSERT_TRUE(outcome.ok()) << sql << ": " << outcome.status();
    EXPECT_TRUE(outcome->results_match) << sql;
    ASSERT_TRUE(outcome->tp_result.has_value());
  }
}

TEST_F(EngineTest, OrPredicatesAgreeAcrossEngines) {
  const char* queries[] = {
      "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p' OR "
      "o_orderstatus = 'f'",
      "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery' OR "
      "c_acctbal < 0",
      "SELECT COUNT(*) FROM customer WHERE NOT (c_mktsegment = 'building') "
      "AND (c_nationkey = 4 OR c_nationkey = 7)",
  };
  for (const char* sql : queries) {
    auto outcome = system_->RunQuery(sql);
    ASSERT_TRUE(outcome.ok()) << sql << ": " << outcome.status();
    EXPECT_TRUE(outcome->results_match) << sql;
    EXPECT_GT(outcome->tp_result->rows[0][0].AsInt(), 0) << sql;
  }
}

TEST_F(EngineTest, SelfJoinWithAliases) {
  // Every nation pairs with the 5 nations of its region: 25 x 5 = 125.
  auto outcome = system_->RunQuery(
      "SELECT COUNT(*) FROM nation a, nation b "
      "WHERE a.n_regionkey = b.n_regionkey");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 125);
  EXPECT_TRUE(outcome->results_match);
  // Asymmetric predicate on one side only.
  outcome = system_->RunQuery(
      "SELECT COUNT(*) FROM nation a, nation b "
      "WHERE a.n_regionkey = b.n_regionkey AND a.n_name = 'egypt'");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 5);
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(EngineTest, AggregatesMatchHandComputation) {
  auto outcome = system_->RunQuery("SELECT COUNT(*) FROM nation");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 25);
  outcome = system_->RunQuery(
      "SELECT COUNT(*) FROM nation WHERE n_regionkey = 0");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 5);
  outcome = system_->RunQuery(
      "SELECT COUNT(*) FROM nation, region WHERE n_regionkey = r_regionkey");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 25);
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(EngineTest, ScalarAggregateOnEmptyInput) {
  auto outcome = system_->RunQuery(
      "SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_custkey = -5");
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->tp_result->rows.size(), 1u);
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 0);
  EXPECT_TRUE(outcome->tp_result->rows[0][1].is_null());
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(EngineTest, OrderByDescLimit) {
  auto outcome = system_->RunQuery(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC, o_orderkey LIMIT 3");
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->tp_result->rows.size(), 3u);
  EXPECT_GE(outcome->tp_result->rows[0][1].AsDouble(),
            outcome->tp_result->rows[1][1].AsDouble());
  EXPECT_TRUE(outcome->results_match);
  // AP should use Top-N for ORDER BY + LIMIT.
  EXPECT_NE(outcome->plans.ap.Explain().find("Top-N"), std::string::npos);
}

TEST_F(EngineTest, TopNByIndexOrderStreamsOnTp) {
  auto outcome = system_->RunQuery(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10");
  ASSERT_TRUE(outcome.ok());
  // TP streams from the PK index and stops after 10 rows: much faster than
  // AP, which scans everything into a Top-N heap plus startup.
  EXPECT_EQ(outcome->faster, EngineKind::kTp);
  EXPECT_LT(outcome->tp_latency_ms, 20.0);
  std::string tp_text = outcome->plans.tp.Explain();
  EXPECT_NE(tp_text.find("Index Scan"), std::string::npos);
  EXPECT_NE(tp_text.find("Limit"), std::string::npos);
  EXPECT_EQ(tp_text.find("'Node Type': 'Sort'"), std::string::npos);
  ASSERT_EQ(outcome->tp_result->rows.size(), 10u);
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(EngineTest, DescTopNAlsoStreamsOnTp) {
  auto outcome = system_->RunQuery(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC LIMIT 10");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // Backward index scan streams DESC order: TP wins here too.
  EXPECT_EQ(outcome->faster, EngineKind::kTp);
  std::string tp_text = outcome->plans.tp.Explain();
  EXPECT_NE(tp_text.find("Index Scan"), std::string::npos);
  EXPECT_EQ(tp_text.find("'Node Type': 'Sort'"), std::string::npos);
  ASSERT_EQ(outcome->tp_result->rows.size(), 10u);
  // Highest keys first.
  EXPECT_GT(outcome->tp_result->rows[0][0].AsInt(),
            outcome->tp_result->rows[9][0].AsInt());
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(EngineTest, LargeOffsetHurtsTpStreaming) {
  auto small = system_->RunQuery(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10");
  auto large = system_->RunQuery(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10 "
      "OFFSET 1000000");
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->tp_latency_ms, small->tp_latency_ms * 10);
}

TEST_F(EngineTest, CostUnitsAreNotComparableAcrossEngines) {
  // The point the paper's prompts hammer on: TP and AP costs live on
  // different scales. For Example 1 the AP plan is ~16x faster yet its
  // cost number is the same order of magnitude as TP's.
  auto outcome = system_->RunQuery(kExample1);
  ASSERT_TRUE(outcome.ok());
  double tp_cost = outcome->plans.tp.root->total_cost;
  double ap_cost = outcome->plans.ap.root->total_cost;
  double cost_ratio = tp_cost / ap_cost;
  double latency_ratio = outcome->tp_latency_ms / outcome->ap_latency_ms;
  // Cost ratio does not track the latency ratio.
  EXPECT_GT(latency_ratio / cost_ratio, 3.0);
}

TEST_F(EngineTest, ExecStatsRecordActualCardinalities) {
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM nation WHERE n_regionkey = 0");
  ASSERT_TRUE(query.ok());
  auto plans = system_->PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  ExecStats stats;
  auto result = system_->Execute(plans->tp, *query, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  // The root's recorded actual cardinality equals the result size.
  auto it = stats.actual_rows.find(plans->tp.root.get());
  ASSERT_NE(it, stats.actual_rows.end());
  EXPECT_EQ(it->second, result->rows.size());
  // Every recorded node belongs to this plan and has a sane count.
  EXPECT_GE(stats.actual_rows.size(), 2u);
  for (const auto& [node, rows] : stats.actual_rows) {
    EXPECT_LE(rows, 25u) << PlanOpName(node->op);
  }
}

TEST_F(EngineTest, IndexNestedLoopJoinRecordsProbeSideStats) {
  // Regression: the INLJ inner side is probed inline (never dispatched
  // through Run), so EXPLAIN ANALYZE used to show no actual cardinality
  // for the inner IndexScan — the explainer then read "0 rows" for the
  // most expensive access path in the plan.
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_orderstatus = 'p'");
  ASSERT_TRUE(query.ok());
  auto plans = system_->PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  // Find the index nested-loop join in the TP plan.
  const PlanNode* inlj = nullptr;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.op == PlanOp::kIndexNestedLoopJoin) inlj = &n;
    for (const auto& c : n.children) walk(*c);
  };
  walk(*plans->tp.root);
  ASSERT_NE(inlj, nullptr) << plans->tp.Explain();
  ExecStats stats;
  auto result = system_->Execute(plans->tp, *query, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  // The probe-side access node (IndexScan, possibly under a Filter) must
  // have a recorded actual cardinality >= the join's output.
  const PlanNode* inner = inlj->children[1].get();
  const PlanNode* filter = nullptr;
  if (inner->op == PlanOp::kFilter) {
    filter = inner;
    inner = inner->children[0].get();
  }
  ASSERT_EQ(inner->op, PlanOp::kIndexScan);
  auto inner_it = stats.actual_rows.find(inner);
  ASSERT_NE(inner_it, stats.actual_rows.end())
      << "no actual cardinality recorded for the INLJ probe side";
  auto join_it = stats.actual_rows.find(inlj);
  ASSERT_NE(join_it, stats.actual_rows.end());
  EXPECT_GT(inner_it->second, 0u);
  EXPECT_GE(inner_it->second, join_it->second);
  if (filter != nullptr) {
    auto filter_it = stats.actual_rows.find(filter);
    ASSERT_NE(filter_it, stats.actual_rows.end());
    EXPECT_LE(filter_it->second, inner_it->second);
    EXPECT_GE(filter_it->second, join_it->second);
  }
}

TEST_F(EngineTest, TopNBreaksSortKeyTiesDeterministically) {
  // Regression: Top-N over a low-cardinality sort key (massive ties) must
  // return the same window as full-sort-then-limit. The bounded heap
  // breaks ties by input order, matching the stable sort of the oracle.
  auto outcome = system_->RunQuery(
      "SELECT o_orderkey, o_orderstatus FROM orders "
      "ORDER BY o_orderstatus LIMIT 10 OFFSET 3");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->tp_result->rows.size(), 10u);
  EXPECT_TRUE(outcome->results_match)
      << "Top-N tie-break diverged from stable sort";
  // The AP plan really went through Top-N (not Sort+Limit).
  EXPECT_NE(outcome->plans.ap.Explain().find("Top-N"), std::string::npos);
}

TEST_F(EngineTest, BindErrorsPropagate) {
  EXPECT_FALSE(system_->RunQuery("SELECT nope FROM customer").ok());
  EXPECT_FALSE(system_->RunQuery("not sql at all").ok());
}

TEST_F(EngineTest, PlanOnlyModeRefusesExecution) {
  HtapSystem plan_only;
  HtapConfig config;
  config.stats_scale_factor = 10.0;
  config.data_scale_factor = 0.0;
  ASSERT_TRUE(plan_only.Init(config).ok());
  auto outcome = plan_only.RunQuery("SELECT COUNT(*) FROM nation");
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->tp_result.has_value());
  EXPECT_GT(outcome->tp_latency_ms, 0.0);
}

}  // namespace
}  // namespace htapex
