#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "durable/durable_kb.h"
#include "durable/wal.h"
#include "vectordb/knowledge_base.h"

namespace htapex {
namespace {

constexpr int kDim = 4;

std::string UniqueDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "htapex_crash_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

KbEntry MakeEntry(int i) {
  KbEntry e;
  e.sql = "SELECT " + std::to_string(i);
  e.embedding.assign(kDim, 0.0);
  e.embedding[i % kDim] = 1.0 + 0.25 * i;
  e.tp_plan_json = "{\"op\":\"tp\"}";
  e.ap_plan_json = "{\"op\":\"ap\"}";
  e.faster = (i % 2 == 0) ? EngineKind::kTp : EngineKind::kAp;
  e.tp_latency_ms = 1.0 + i;
  e.ap_latency_ms = 2.0 + i;
  e.expert_explanation = "explanation #" + std::to_string(i);
  return e;
}

void ExpectSameKb(const KnowledgeBase& a, const KnowledgeBase& b) {
  ASSERT_EQ(a.total_entries(), b.total_entries());
  EXPECT_EQ(a.next_sequence(), b.next_sequence());
  for (int id = 0; id < static_cast<int>(a.total_entries()); ++id) {
    SCOPED_TRACE("id=" + std::to_string(id));
    EXPECT_EQ(a.IsExpired(id), b.IsExpired(id));
    const KbEntry* x = a.RawGet(id);
    const KbEntry* y = b.RawGet(id);
    ASSERT_NE(x, nullptr);
    ASSERT_NE(y, nullptr);
    EXPECT_EQ(x->sql, y->sql);
    EXPECT_EQ(x->embedding, y->embedding);
    EXPECT_EQ(x->expert_explanation, y->expert_explanation);
    EXPECT_EQ(x->sequence, y->sequence);
  }
}

/// One scripted mutation; the same deterministic sequence drives every
/// matrix cell so a cell is fully identified by (fault point, crash index).
struct ScriptOp {
  enum class Kind { kInsert, kCorrect, kExpire };
  Kind kind = Kind::kInsert;
  int arg = 0;  // insert ordinal, or the target id
};

std::vector<ScriptOp> BuildScript() {
  using K = ScriptOp::Kind;
  // Mixed so every WAL op kind crosses every fault point, with enough
  // inserts that the every-3-mutations snapshot trigger fires several
  // times mid-script (exercising the snapshot points at p=1).
  return {
      {K::kInsert, 0}, {K::kInsert, 1}, {K::kInsert, 2},  {K::kCorrect, 1},
      {K::kInsert, 3}, {K::kExpire, 2}, {K::kInsert, 4},  {K::kCorrect, 0},
      {K::kInsert, 5}, {K::kExpire, 0}, {K::kCorrect, 3}, {K::kInsert, 6},
  };
}

Status ApplyOp(KnowledgeBase* kb, const ScriptOp& op) {
  switch (op.kind) {
    case ScriptOp::Kind::kInsert:
      return kb->Insert(MakeEntry(op.arg)).status();
    case ScriptOp::Kind::kCorrect:
      return kb->CorrectExplanation(
          op.arg, "corrected #" + std::to_string(op.arg));
    case ScriptOp::Kind::kExpire:
      return kb->Expire(op.arg);
  }
  return Status::Internal("unreachable");
}

/// The tentpole guarantee, exhaustively: for every fault point and every
/// position in the mutation script, kill the write path at that exact step
/// and assert recovery equals the pre-crash state minus at most the one
/// in-flight mutation (exactly the mutations whose commit returned OK —
/// fsync_every_n == 1 means an aborted mutation is never half-durable).
TEST(CrashMatrixTest, EveryFaultPointAtEveryScriptStep) {
  const std::vector<ScriptOp> script = BuildScript();
  const char* points[] = {kFaultWalAppend, kFaultWalFsync, kFaultSnapshotWrite,
                          kFaultSnapshotRename};
  uint64_t seed = FaultInjector::EnvSeed(42);
  int cells = 0;
  int crashed_cells = 0;
  for (const char* point : points) {
    auto faults =
        FaultInjector::Parse(std::string(point) + ":p=1", seed);
    ASSERT_TRUE(faults.ok()) << faults.status().ToString();
    for (size_t crash_at = 0; crash_at < script.size(); ++crash_at) {
      SCOPED_TRACE(std::string(point) + " @ op " + std::to_string(crash_at));
      std::string dir = UniqueDir(std::string(point) + "_" +
                                  std::to_string(crash_at));
      KnowledgeBase kb(kDim);
      KnowledgeBase shadow(kDim);  // what a crash may never lose
      {
        DurabilityOptions opt;
        opt.dir = dir;
        opt.snapshot_every_n = 3;
        DurableKnowledgeBase durable(opt);
        ASSERT_TRUE(durable.Attach(&kb).ok());
        for (size_t j = 0; j < crash_at; ++j) {
          ASSERT_TRUE(ApplyOp(&kb, script[j]).ok());
          ASSERT_TRUE(ApplyOp(&shadow, script[j]).ok());
        }
        durable.set_fault_injector(&*faults);
        Status st = ApplyOp(&kb, script[crash_at]);
        if (st.ok()) {
          // The armed point was not on this op's write path (e.g. a
          // snapshot point with no trigger due): the mutation committed.
          ASSERT_TRUE(ApplyOp(&shadow, script[crash_at]).ok());
        } else {
          ++crashed_cells;
        }
        // The simulated process is dead; the destructor just detaches.
      }
      KnowledgeBase recovered(kDim);
      DurabilityOptions opt;
      opt.dir = dir;
      opt.snapshot_every_n = 3;
      DurableKnowledgeBase durable(opt);
      auto info = durable.Attach(&recovered);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      EXPECT_TRUE(info->recovered);
      ExpectSameKb(recovered, shadow);
      // The recovered directory is fully writable again.
      ASSERT_TRUE(recovered.Insert(MakeEntry(99)).ok());
      ++cells;
      std::filesystem::remove_all(dir);
    }
  }
  EXPECT_EQ(cells, static_cast<int>(4 * script.size()));
  // The WAL points sit on every mutation's path, so at least the whole
  // wal.append and wal.fsync rows must have actually simulated a crash.
  EXPECT_GE(crashed_cells, static_cast<int>(2 * script.size()));
}

/// A crash during an explicit Snapshot() call (not the mutation-path
/// trigger) must leave the WAL authoritative: nothing is lost, and the
/// next attach both recovers and can snapshot again.
TEST(CrashMatrixTest, SnapshotCrashLeavesWalAuthoritative) {
  for (const char* point : {kFaultSnapshotWrite, kFaultSnapshotRename}) {
    SCOPED_TRACE(point);
    std::string dir = UniqueDir(std::string("snap_") + point);
    auto faults = FaultInjector::Parse(std::string(point) + ":p=1", 42);
    ASSERT_TRUE(faults.ok());
    KnowledgeBase kb(kDim);
    {
      DurabilityOptions opt;
      opt.dir = dir;
      DurableKnowledgeBase durable(opt);
      ASSERT_TRUE(durable.Attach(&kb).ok());
      for (int i = 0; i < 5; ++i) ASSERT_TRUE(kb.Insert(MakeEntry(i)).ok());
      durable.set_fault_injector(&*faults);
      EXPECT_FALSE(durable.Snapshot().ok());
      EXPECT_EQ(durable.metrics()->snapshot_failures.Value(), 1u);
    }
    KnowledgeBase recovered(kDim);
    DurabilityOptions opt;
    opt.dir = dir;
    DurableKnowledgeBase durable(opt);
    auto info = durable.Attach(&recovered);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    ExpectSameKb(recovered, kb);
    ASSERT_TRUE(durable.Snapshot().ok());  // no longer armed: succeeds
    std::filesystem::remove_all(dir);
  }
}

/// Fuzz-style corruption: flip a bit or truncate the WAL at seeded
/// positions. Replay must never crash, must recover a strict prefix of the
/// original history, and must report any loss through DurabilityMetrics.
TEST(CrashMatrixTest, CorruptWalNeverCrashesAndReportsLoss) {
  constexpr int kRecords = 10;
  std::string pristine = UniqueDir("fuzz_pristine");
  KnowledgeBase original(kDim);
  {
    DurabilityOptions opt;
    opt.dir = pristine;
    DurableKnowledgeBase durable(opt);
    ASSERT_TRUE(durable.Attach(&original).ok());
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(original.Insert(MakeEntry(i)).ok());
    }
  }
  std::string wal = pristine + "/wal-000000.log";
  ASSERT_TRUE(std::filesystem::exists(wal));
  const auto wal_size =
      static_cast<uint64_t>(std::filesystem::file_size(wal));

  // Frame boundaries, recomputed from the record encoding: a truncation
  // exactly on a boundary yields a shorter-but-valid log (a loss replay
  // cannot detect), so truncation trials step off boundaries. Checking the
  // sum against the real file also pins the on-disk framing.
  std::vector<uint64_t> boundaries = {0};
  for (int i = 0; i < kRecords; ++i) {
    WalRecord r;
    r.op = WalRecord::Op::kInsert;
    r.entry = MakeEntry(i);
    boundaries.push_back(boundaries.back() + 8 + EncodeWalRecord(r).size());
  }
  ASSERT_EQ(boundaries.back(), wal_size);

  uint64_t seed = FaultInjector::EnvSeed(42);
  for (int trial = 0; trial < 24; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    std::string dir = UniqueDir("fuzz_" + std::to_string(trial));
    std::filesystem::copy(pristine, dir);
    std::string target = dir + "/wal-000000.log";
    // Deterministic pseudo-random position from the shared seed mixer.
    uint64_t pos =
        MixFaultSeed(seed, 0xF022, static_cast<uint64_t>(trial), 0) %
        wal_size;
    if (trial % 2 != 0) {
      for (uint64_t b : boundaries) {
        if (pos == b) pos += 1;
      }
    }
    if (trial % 2 == 0) {
      // Bit flip somewhere in the log (header, checksum or payload).
      std::fstream f(target, std::ios::binary | std::ios::in | std::ios::out);
      f.seekg(static_cast<std::streamoff>(pos));
      char byte = 0;
      f.get(byte);
      f.seekp(static_cast<std::streamoff>(pos));
      f.put(static_cast<char>(
          byte ^ static_cast<char>(1u << (trial / 2 % 8))));
    } else {
      std::filesystem::resize_file(target, pos);
    }

    KnowledgeBase recovered(kDim);
    DurabilityOptions opt;
    opt.dir = dir;
    DurableKnowledgeBase durable(opt);
    auto info = durable.Attach(&recovered);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    // Whatever survives is a strict prefix of the original history.
    ASSERT_LE(recovered.total_entries(), static_cast<size_t>(kRecords));
    for (int id = 0; id < static_cast<int>(recovered.total_entries()); ++id) {
      EXPECT_EQ(recovered.RawGet(id)->sql, original.RawGet(id)->sql);
      EXPECT_EQ(recovered.RawGet(id)->sequence,
                original.RawGet(id)->sequence);
    }
    // Any loss is visible in the metrics, never silent.
    uint64_t lost =
        static_cast<uint64_t>(kRecords) - recovered.total_entries();
    if (lost > 0) {
      EXPECT_GT(durable.metrics()->truncated_records.Value() +
                    durable.metrics()->corrupt_records.Value(),
                0u);
    }
    // And the salvaged state accepts new mutations.
    ASSERT_TRUE(recovered.Insert(MakeEntry(99)).ok());
    std::filesystem::remove_all(dir);
  }
  std::filesystem::remove_all(pristine);
}

}  // namespace
}  // namespace htapex
