#include <gtest/gtest.h>

#include "engine/htap_system.h"

namespace htapex {
namespace {

/// HAVING / IS NULL / DISTINCT aggregate coverage, executed for real on
/// both engines with results cross-checked.
class SqlExtendedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.stats_scale_factor = 0.02;
    config.data_scale_factor = 0.02;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static HtapSystem* system_;
};

HtapSystem* SqlExtendedTest::system_ = nullptr;

TEST_F(SqlExtendedTest, HavingFiltersGroups) {
  // Regions have 5 nations each; HAVING COUNT(*) > 4 keeps all, > 5 none.
  auto all = system_->RunQuery(
      "SELECT n_regionkey, COUNT(*) FROM nation GROUP BY n_regionkey "
      "HAVING COUNT(*) > 4 ORDER BY n_regionkey");
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->tp_result->rows.size(), 5u);
  EXPECT_TRUE(all->results_match);

  auto none = system_->RunQuery(
      "SELECT n_regionkey, COUNT(*) FROM nation GROUP BY n_regionkey "
      "HAVING COUNT(*) > 5");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->tp_result->rows.size(), 0u);
  EXPECT_TRUE(none->results_match);
}

TEST_F(SqlExtendedTest, HavingWithGroupKeyPredicate) {
  auto outcome = system_->RunQuery(
      "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment "
      "HAVING c_mktsegment = 'machinery'");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->tp_result->rows.size(), 1u);
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsString(), "machinery");
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(SqlExtendedTest, HavingValidation) {
  // HAVING without GROUP BY is rejected.
  EXPECT_FALSE(
      system_->RunQuery("SELECT COUNT(*) FROM nation HAVING COUNT(*) > 1")
          .ok());
  // HAVING over a non-grouped column is rejected.
  EXPECT_FALSE(system_
                   ->RunQuery("SELECT n_regionkey, COUNT(*) FROM nation "
                              "GROUP BY n_regionkey HAVING n_name = 'egypt'")
                   .ok());
}

TEST_F(SqlExtendedTest, IsNullPredicates) {
  // Generated TPC-H data has no NULLs, so IS NULL selects nothing and
  // IS NOT NULL selects everything.
  auto nulls = system_->RunQuery(
      "SELECT COUNT(*) FROM nation WHERE n_comment IS NULL");
  ASSERT_TRUE(nulls.ok()) << nulls.status();
  EXPECT_EQ(nulls->tp_result->rows[0][0].AsInt(), 0);
  EXPECT_TRUE(nulls->results_match);
  auto not_nulls = system_->RunQuery(
      "SELECT COUNT(*) FROM nation WHERE n_comment IS NOT NULL");
  ASSERT_TRUE(not_nulls.ok());
  EXPECT_EQ(not_nulls->tp_result->rows[0][0].AsInt(), 25);
  EXPECT_TRUE(not_nulls->results_match);
}

TEST_F(SqlExtendedTest, IsNullOverAggregate) {
  // SUM over an empty filter yields NULL; HAVING SUM(...) IS NULL keeps it.
  auto outcome = system_->RunQuery(
      "SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_custkey = -1");
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->tp_result->rows[0][1].is_null());
}

TEST_F(SqlExtendedTest, CountDistinct) {
  auto outcome = system_->RunQuery(
      "SELECT COUNT(DISTINCT n_regionkey), COUNT(n_regionkey) FROM nation");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 5);   // 5 regions
  EXPECT_EQ(outcome->tp_result->rows[0][1].AsInt(), 25);  // 25 nations
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(SqlExtendedTest, CountDistinctPerGroup) {
  auto outcome = system_->RunQuery(
      "SELECT c_mktsegment, COUNT(DISTINCT c_nationkey) FROM customer "
      "GROUP BY c_mktsegment ORDER BY c_mktsegment");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->tp_result->rows.size(), 5u);
  for (const Row& row : outcome->tp_result->rows) {
    // Each segment has customers from (almost) all 25 nations at this scale.
    EXPECT_GT(row[1].AsInt(), 20);
    EXPECT_LE(row[1].AsInt(), 25);
  }
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(SqlExtendedTest, SumDistinctIgnoresDuplicates) {
  // n_regionkey values are 0..4, five times each: SUM = 50, SUM(DISTINCT)=10.
  auto outcome = system_->RunQuery(
      "SELECT SUM(n_regionkey), SUM(DISTINCT n_regionkey) FROM nation");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 50);
  EXPECT_EQ(outcome->tp_result->rows[0][1].AsInt(), 10);
  EXPECT_TRUE(outcome->results_match);
}

TEST_F(SqlExtendedTest, HavingAppearsAsFilterAboveAggregation) {
  auto query = system_->Bind(
      "SELECT n_regionkey, COUNT(*) FROM nation GROUP BY n_regionkey "
      "HAVING COUNT(*) > 2");
  ASSERT_TRUE(query.ok());
  auto plans = system_->PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  // Both engines: root (or below project) contains Filter over aggregate.
  for (const PhysicalPlan* plan : {&plans->tp, &plans->ap}) {
    std::string text = plan->Explain();
    EXPECT_NE(text.find("'Node Type': 'Filter'"), std::string::npos);
    EXPECT_NE(text.find("COUNT(*) > 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace htapex
