#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/kernels.h"
#include "common/rng.h"
#include "vectordb/hnsw.h"
#include "vectordb/vector_store.h"

namespace htapex {
namespace kernels {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
const float kNan = std::numeric_limits<float>::quiet_NaN();

/// Every backend this build/CPU can actually run (scalar always qualifies).
std::vector<Backend> SupportedBackends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kNeon}) {
    if (BackendSupported(b)) out.push_back(b);
  }
  return out;
}

/// Restores the startup dispatch choice after each test so a forced
/// backend cannot leak into later tests in this process.
class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { startup_ = ActiveBackend(); }
  void TearDown() override { ASSERT_TRUE(ForceBackendForTest(startup_)); }
  Backend startup_ = Backend::kScalar;
};

std::vector<float> RandomVec(Rng* rng, int n) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng->UniformReal(-2, 2));
  return v;
}

// Double-precision references: the SIMD paths may reassociate and fuse, so
// comparisons allow rounding slack proportional to the reduction length.

double RefSquaredL2(const float* a, const float* b, int n) {
  double acc = 0;
  for (int i = 0; i < n; ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

void RefGemmAccum(const float* a, const float* b, double* c, int m, int k,
                  int n) {
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      double av = a[i * k + kk];
      for (int j = 0; j < n; ++j) {
        c[i * n + j] += av * b[kk * n + j];
      }
    }
  }
}

// The lengths cover every tail case: empty, below one SIMD lane, exactly
// one/two lanes, lane+1, and well past the blocked-GEMM j-block width.
const int kLengths[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100};

TEST_F(KernelsTest, SquaredL2MatchesReferenceOnEveryBackend) {
  Rng rng(11);
  for (Backend backend : SupportedBackends()) {
    ASSERT_TRUE(ForceBackendForTest(backend));
    for (int n : kLengths) {
      // +1 slack so the offset-by-one (unaligned) view stays in bounds.
      std::vector<float> a = RandomVec(&rng, n + 1);
      std::vector<float> b = RandomVec(&rng, n + 1);
      for (int off : {0, 1}) {
        const float* pa = a.data() + off;
        const float* pb = b.data() + off;
        double ref = RefSquaredL2(pa, pb, n);
        EXPECT_NEAR(SquaredL2(pa, pb, n), ref, 1e-4 * (1 + ref))
            << BackendName(backend) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST_F(KernelsTest, GemmAccumMatchesReferenceOnEveryBackend) {
  Rng rng(12);
  const int shapes[][3] = {{1, 1, 1},  {1, 5, 2},  {3, 5, 7},  {4, 16, 16},
                           {2, 8, 33}, {7, 21, 32}, {5, 32, 8}, {1, 64, 2}};
  for (Backend backend : SupportedBackends()) {
    ASSERT_TRUE(ForceBackendForTest(backend));
    for (const auto& s : shapes) {
      int m = s[0], k = s[1], n = s[2];
      std::vector<float> a = RandomVec(&rng, m * k);
      std::vector<float> b = RandomVec(&rng, k * n);
      std::vector<float> c = RandomVec(&rng, m * n);  // accumulate on top
      std::vector<double> ref(c.begin(), c.end());
      GemmAccum(a.data(), b.data(), c.data(), m, k, n);
      RefGemmAccum(a.data(), b.data(), ref.data(), m, k, n);
      for (int i = 0; i < m * n; ++i) {
        EXPECT_NEAR(c[static_cast<size_t>(i)], ref[static_cast<size_t>(i)],
                    1e-4)
            << BackendName(backend) << " " << m << "x" << k << "x" << n
            << " elem " << i;
      }
    }
  }
}

TEST_F(KernelsTest, MatVecAccumIsTheSingleRowGemm) {
  Rng rng(13);
  const int rows = 21, cols = 32;
  std::vector<float> w = RandomVec(&rng, rows * cols);
  std::vector<float> x = RandomVec(&rng, rows);
  for (Backend backend : SupportedBackends()) {
    ASSERT_TRUE(ForceBackendForTest(backend));
    std::vector<float> y(static_cast<size_t>(cols), 0.25f);
    std::vector<float> y_gemm = y;
    MatVecAccum(w.data(), x.data(), rows, cols, y.data());
    GemmAccum(x.data(), w.data(), y_gemm.data(), 1, rows, cols);
    for (int j = 0; j < cols; ++j) {
      EXPECT_NEAR(y[static_cast<size_t>(j)], y_gemm[static_cast<size_t>(j)],
                  1e-5)
          << BackendName(backend) << " col " << j;
    }
  }
}

TEST_F(KernelsTest, AxpyMatchesReferenceOnEveryBackend) {
  Rng rng(14);
  for (Backend backend : SupportedBackends()) {
    ASSERT_TRUE(ForceBackendForTest(backend));
    for (int n : kLengths) {
      std::vector<float> x = RandomVec(&rng, n);
      std::vector<float> y = RandomVec(&rng, n);
      std::vector<float> expect = y;
      const float alpha = 0.75f;
      for (int i = 0; i < n; ++i) expect[static_cast<size_t>(i)] += alpha * x[static_cast<size_t>(i)];
      Axpy(alpha, x.data(), y.data(), n);
      for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(y[static_cast<size_t>(i)], expect[static_cast<size_t>(i)],
                    1e-6)
            << BackendName(backend) << " n=" << n << " elem " << i;
      }
    }
  }
}

TEST_F(KernelsTest, ReluClampsAndKeepsNanInf) {
  for (Backend backend : SupportedBackends()) {
    ASSERT_TRUE(ForceBackendForTest(backend));
    std::vector<float> x = {-1.5f, 0.0f, 2.5f, -0.0f, kNan, kInf, -kInf,
                            3.0f, -7.0f};
    Relu(x.data(), static_cast<int>(x.size()));
    EXPECT_EQ(x[0], 0.0f) << BackendName(backend);
    EXPECT_EQ(x[1], 0.0f);
    EXPECT_EQ(x[2], 2.5f);
    EXPECT_EQ(x[3], 0.0f);
    EXPECT_TRUE(std::isnan(x[4])) << BackendName(backend);
    EXPECT_EQ(x[5], kInf);
    EXPECT_EQ(x[6], 0.0f);
    EXPECT_EQ(x[7], 3.0f);
    EXPECT_EQ(x[8], 0.0f);
  }
}

TEST_F(KernelsTest, ReduceMaxSemantics) {
  Rng rng(15);
  for (Backend backend : SupportedBackends()) {
    ASSERT_TRUE(ForceBackendForTest(backend));
    EXPECT_EQ(ReduceMax(nullptr, 0), -kInf) << BackendName(backend);
    for (int n : kLengths) {
      if (n == 0) continue;
      std::vector<float> x = RandomVec(&rng, n);
      float expect = x[0];
      for (float v : x) expect = std::max(expect, v);
      EXPECT_EQ(ReduceMax(x.data(), n), expect)
          << BackendName(backend) << " n=" << n;
      // A NaN anywhere — lane 0, mid-vector, or in the scalar tail — must
      // poison the result even though hardware max drops NaNs.
      for (int pos : {0, n / 2, n - 1}) {
        std::vector<float> bad = x;
        bad[static_cast<size_t>(pos)] = kNan;
        EXPECT_TRUE(std::isnan(ReduceMax(bad.data(), n)))
            << BackendName(backend) << " n=" << n << " nan@" << pos;
      }
    }
    std::vector<float> with_inf = {1.0f, kInf, -3.0f};
    EXPECT_EQ(ReduceMax(with_inf.data(), 3), kInf);
  }
}

TEST_F(KernelsTest, MaxAccumSemantics) {
  Rng rng(16);
  for (Backend backend : SupportedBackends()) {
    ASSERT_TRUE(ForceBackendForTest(backend));
    for (int n : kLengths) {
      std::vector<float> acc = RandomVec(&rng, n);
      std::vector<float> x = RandomVec(&rng, n);
      std::vector<float> expect = acc;
      for (int i = 0; i < n; ++i) {
        expect[static_cast<size_t>(i)] =
            std::max(expect[static_cast<size_t>(i)], x[static_cast<size_t>(i)]);
      }
      MaxAccum(acc.data(), x.data(), n);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(acc[static_cast<size_t>(i)], expect[static_cast<size_t>(i)])
            << BackendName(backend) << " n=" << n << " elem " << i;
      }
    }
    // NaN in either operand wins.
    std::vector<float> acc = {1.0f, kNan, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f, 8.0f,
                              9.0f};
    std::vector<float> x = {2.0f, 0.0f, kNan, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f,
                            kNan};
    MaxAccum(acc.data(), x.data(), 9);
    EXPECT_EQ(acc[0], 2.0f) << BackendName(backend);
    EXPECT_TRUE(std::isnan(acc[1]));
    EXPECT_TRUE(std::isnan(acc[2]));
    EXPECT_EQ(acc[3], 4.0f);
    EXPECT_TRUE(std::isnan(acc[8]));
  }
}

TEST_F(KernelsTest, DispatchAndCounters) {
  // Scalar can always be forced; an unsupported backend is refused and
  // leaves the active choice untouched.
  Backend before = ActiveBackend();
  for (Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (!BackendSupported(b)) {
      EXPECT_FALSE(ForceBackendForTest(b));
      EXPECT_EQ(ActiveBackend(), before);
    }
  }
  ASSERT_TRUE(ForceBackendForTest(Backend::kScalar));
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  KernelStats s0 = Stats();
  std::vector<float> a(8, 1.0f), b(8, 2.0f);
  (void)SquaredL2(a.data(), b.data(), 8);
  Relu(a.data(), 8);
  (void)ReduceMax(a.data(), 8);
  KernelStats s1 = Stats();
  EXPECT_EQ(s1.backend, Backend::kScalar);
  EXPECT_EQ(s1.squared_l2, s0.squared_l2 + 1);
  EXPECT_EQ(s1.relu, s0.relu + 1);
  EXPECT_EQ(s1.reduce_max, s0.reduce_max + 1);
}

TEST_F(KernelsTest, ScalarBackendIsBitwiseDeterministic) {
  ASSERT_TRUE(ForceBackendForTest(Backend::kScalar));
  Rng rng(17);
  std::vector<float> a = RandomVec(&rng, 37);
  std::vector<float> b = RandomVec(&rng, 37);
  float d1 = SquaredL2(a.data(), b.data(), 37);
  float d2 = SquaredL2(a.data(), b.data(), 37);
  EXPECT_EQ(d1, d2);
  std::vector<float> c1(21, 0.0f), c2(21, 0.0f);
  GemmAccum(a.data(), b.data(), c1.data(), 3, 7, 3);
  GemmAccum(a.data(), b.data(), c2.data(), 3, 7, 3);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(c1[static_cast<size_t>(i)], c2[static_cast<size_t>(i)]);
  }
}

TEST_F(KernelsTest, ArenaPointerStabilityAndSteadyState) {
  Arena arena;
  Arena::Stats s0 = arena.stats();
  EXPECT_EQ(s0.grows, 0u);
  float* first = arena.AllocFloats(100);
  first[0] = 42.0f;
  first[99] = 7.0f;
  uint64_t grows_after_first = arena.stats().grows;
  EXPECT_GE(grows_after_first, 1u);
  // Force growth: the first block must stay addressable (chunk append, not
  // realloc).
  float* big = arena.AllocFloats(1 << 20);
  big[0] = 1.0f;
  EXPECT_EQ(first[0], 42.0f);
  EXPECT_EQ(first[99], 7.0f);
  EXPECT_GT(arena.stats().grows, grows_after_first);

  // After a Reset the coalesced capacity covers the whole previous
  // footprint, so replaying the same allocation pattern never grows again.
  arena.Reset();
  uint64_t steady_grows = arena.stats().grows;
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    float* p = arena.AllocFloats(100);
    int* q = arena.AllocInts(50);
    float* r = arena.AllocFloats(1 << 20);
    p[0] = q[0] = 0;
    r[0] = 0;
    EXPECT_EQ(arena.stats().grows, steady_grows) << "round " << round;
  }
  EXPECT_GE(arena.stats().resets, 11u);
  EXPECT_LE(arena.stats().used_bytes, arena.stats().capacity_bytes);
}

TEST_F(KernelsTest, ThreadArenaIsReusable) {
  Arena& arena = ThreadArena();
  arena.Reset();
  float* p = arena.AllocFloats(16);
  for (int i = 0; i < 16; ++i) p[i] = static_cast<float>(i);
  EXPECT_EQ(p[15], 15.0f);
  EXPECT_EQ(&arena, &ThreadArena());
}

/// Vector search must return identical ids (and tie order) whichever
/// backend computes the distances — SIMD reassociation may move a distance
/// by ulps but the paper-scale id separation dwarfs that.
TEST_F(KernelsTest, SearchBackendParity) {
  Rng rng(18);
  const int dim = 16, count = 200, k = 5;
  VectorStore store(dim);
  HnswIndex index(dim);
  std::vector<std::vector<double>> queries;
  for (int i = 0; i < count; ++i) {
    std::vector<double> v(dim);
    for (double& x : v) x = rng.UniformReal(-1, 1);
    ASSERT_TRUE(store.Add(v).ok());
    ASSERT_TRUE(index.Add(v).ok());
    if (i % 20 == 0) queries.push_back(std::move(v));
  }
  for (const auto& q : queries) {
    ASSERT_TRUE(ForceBackendForTest(Backend::kScalar));
    std::vector<SearchHit> store_scalar = store.Search(q, k);
    std::vector<SearchHit> index_scalar = index.Search(q, k);
    ASSERT_TRUE(ForceBackendForTest(startup_));
    std::vector<SearchHit> store_native = store.Search(q, k);
    std::vector<SearchHit> index_native = index.Search(q, k);
    ASSERT_EQ(store_scalar.size(), store_native.size());
    for (size_t i = 0; i < store_scalar.size(); ++i) {
      EXPECT_EQ(store_scalar[i].id, store_native[i].id) << "hit " << i;
      EXPECT_NEAR(store_scalar[i].distance, store_native[i].distance, 1e-3);
    }
    ASSERT_EQ(index_scalar.size(), index_native.size());
    for (size_t i = 0; i < index_scalar.size(); ++i) {
      EXPECT_EQ(index_scalar[i].id, index_native[i].id) << "hit " << i;
    }
    // Exact-store top-1 is the true nearest; HNSW recalls it here too.
    ASSERT_FALSE(store_scalar.empty());
    ASSERT_FALSE(index_scalar.empty());
    EXPECT_EQ(store_scalar[0].id, index_scalar[0].id);
  }
}

}  // namespace
}  // namespace kernels
}  // namespace htapex
