#include <gtest/gtest.h>

#include "catalog/value.h"
#include "common/json.h"
#include "common/rng.h"

namespace htapex {
namespace {

/// Random JSON document generator for round-trip property tests.
JsonValue RandomJson(Rng* rng, int depth) {
  double r = rng->NextDouble();
  if (depth <= 0 || r < 0.35) {
    switch (rng->Uniform(0, 4)) {
      case 0:
        return JsonValue::Null();
      case 1:
        return JsonValue::Bool(rng->Bernoulli(0.5));
      case 2:
        return JsonValue::Int(rng->Uniform(-1'000'000, 1'000'000));
      case 3:
        return JsonValue::Double(rng->UniformReal(-1e6, 1e6));
      default: {
        std::string s;
        int len = static_cast<int>(rng->Uniform(0, 12));
        for (int i = 0; i < len; ++i) {
          // Include the troublemakers: quotes, backslashes, control chars.
          const char* alphabet = "ab'\"\\\n\tz0: ,{}[]";
          s.push_back(alphabet[rng->Uniform(0, 15)]);
        }
        return JsonValue::String(s);
      }
    }
  }
  if (r < 0.65) {
    JsonValue arr = JsonValue::MakeArray();
    int n = static_cast<int>(rng->Uniform(0, 5));
    for (int i = 0; i < n; ++i) arr.Append(RandomJson(rng, depth - 1));
    return arr;
  }
  JsonValue obj = JsonValue::MakeObject();
  int n = static_cast<int>(rng->Uniform(0, 5));
  for (int i = 0; i < n; ++i) {
    obj.Set("k" + std::to_string(i), RandomJson(rng, depth - 1));
  }
  return obj;
}

TEST(JsonPropertyTest, RandomDocumentsRoundTripCompact) {
  Rng rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    JsonValue doc = RandomJson(&rng, 4);
    auto parsed = JsonValue::Parse(doc.Dump());
    ASSERT_TRUE(parsed.ok()) << doc.Dump();
    EXPECT_TRUE(*parsed == doc) << doc.Dump();
  }
}

TEST(JsonPropertyTest, RandomDocumentsRoundTripIndented) {
  Rng rng(102);
  for (int trial = 0; trial < 100; ++trial) {
    JsonValue doc = RandomJson(&rng, 3);
    auto parsed = JsonValue::Parse(doc.Dump(2));
    ASSERT_TRUE(parsed.ok()) << doc.Dump(2);
    EXPECT_TRUE(*parsed == doc);
  }
}

TEST(JsonPropertyTest, PythonishFlavourRoundTrips) {
  Rng rng(103);
  for (int trial = 0; trial < 100; ++trial) {
    JsonValue doc = RandomJson(&rng, 3);
    auto parsed = JsonValue::Parse(doc.DumpPythonish());
    ASSERT_TRUE(parsed.ok()) << doc.DumpPythonish();
    EXPECT_TRUE(*parsed == doc);
  }
}

TEST(DatePropertyTest, EveryDayRoundTripsAcrossTheTpchRange) {
  // 1992-01-01 .. 1998-12-31 covers all generated dates; step through each
  // day and require Format(Parse(d)) == d and Parse(Format(n)) == n.
  int64_t start = 0, end = 0;
  ASSERT_TRUE(ParseDate("1992-01-01", &start));
  ASSERT_TRUE(ParseDate("1998-12-31", &end));
  for (int64_t day = start; day <= end; ++day) {
    std::string text = FormatDate(day);
    int64_t back = 0;
    ASSERT_TRUE(ParseDate(text, &back)) << text;
    EXPECT_EQ(back, day) << text;
  }
}

TEST(DatePropertyTest, OrderingMatchesStringOrdering) {
  // ISO dates compare the same lexically and numerically.
  Rng rng(104);
  int64_t start = 0;
  ASSERT_TRUE(ParseDate("1992-01-01", &start));
  for (int trial = 0; trial < 500; ++trial) {
    int64_t a = start + rng.Uniform(0, 2500);
    int64_t b = start + rng.Uniform(0, 2500);
    EXPECT_EQ(a < b, FormatDate(a) < FormatDate(b));
  }
}

TEST(ValuePropertyTest, CompareIsAntisymmetricAndTransitive) {
  Rng rng(105);
  std::vector<Value> pool;
  for (int i = 0; i < 30; ++i) {
    switch (rng.Uniform(0, 3)) {
      case 0:
        pool.push_back(Value::Null());
        break;
      case 1:
        pool.push_back(Value::Int(rng.Uniform(-50, 50)));
        break;
      case 2:
        pool.push_back(Value::Double(rng.UniformReal(-50, 50)));
        break;
      default:
        pool.push_back(Value::Str(std::string(1 + rng.Uniform(0, 3) % 4, 'a' +
                                              static_cast<char>(rng.Uniform(0, 25)))));
    }
  }
  for (const Value& a : pool) {
    for (const Value& b : pool) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a));
      for (const Value& c : pool) {
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0);
        }
      }
    }
  }
}

TEST(ValuePropertyTest, HashConsistentWithEquality) {
  Rng rng(106);
  for (int trial = 0; trial < 200; ++trial) {
    int64_t x = rng.Uniform(-1000, 1000);
    EXPECT_EQ(Value::Int(x).Hash(), Value::Int(x).Hash());
    EXPECT_EQ(Value::Int(x).Hash(), Value::Double(static_cast<double>(x)).Hash());
  }
}

}  // namespace
}  // namespace htapex
