#include <gtest/gtest.h>

#include "engine/htap_system.h"
#include "expert/expert_analyzer.h"
#include "expert/factors.h"
#include "expert/grader.h"

namespace htapex {
namespace {

TEST(FactorsTest, PhrasesRecoverableFromText) {
  // Every canonical phrase must be found in a text that embeds it — the
  // property that makes explanation text gradeable.
  for (PerfFactor f : AllPerfFactors()) {
    std::string text = std::string("Blah blah because ") + PerfFactorPhrase(f) +
                       " and more words.";
    auto found = ExtractFactorsFromText(text);
    ASSERT_EQ(found.size(), 1u) << PerfFactorId(f);
    EXPECT_EQ(found[0], f);
  }
}

TEST(FactorsTest, PhrasesAreNotSubstringsOfEachOther) {
  for (PerfFactor a : AllPerfFactors()) {
    for (PerfFactor b : AllPerfFactors()) {
      if (a == b) continue;
      std::string pa = PerfFactorPhrase(a);
      std::string pb = PerfFactorPhrase(b);
      EXPECT_EQ(pa.find(pb), std::string::npos)
          << PerfFactorId(b) << " is a substring of " << PerfFactorId(a);
    }
  }
}

TEST(ClaimsFromTextTest, ParsesWinnerFactorsAndNone) {
  ExplanationClaims none = ClaimsFromText("  None ");
  EXPECT_TRUE(none.is_none);
  std::string text = std::string("AP is faster than TP because TP uses a ") +
                     PerfFactorPhrase(PerfFactor::kNoIndexNestedLoop) + ".";
  ExplanationClaims claims = ClaimsFromText(text);
  EXPECT_FALSE(claims.is_none);
  EXPECT_EQ(claims.claimed_faster, EngineKind::kAp);
  ASSERT_EQ(claims.factors.size(), 1u);
  EXPECT_EQ(claims.factors[0], PerfFactor::kNoIndexNestedLoop);
  EXPECT_FALSE(claims.compared_costs);

  ExplanationClaims tp = ClaimsFromText("TP is faster here.");
  EXPECT_EQ(tp.claimed_faster, EngineKind::kTp);

  ExplanationClaims leak = ClaimsFromText(
      "AP is faster. Comparing the cost estimates, AP shows a lower cost "
      "estimate.");
  EXPECT_TRUE(leak.compared_costs);
}

class GraderTest : public ::testing::Test {
 protected:
  ExpertAnalysis Truth(EngineKind faster, PerfFactor primary,
                       std::vector<PerfFactor> secondary = {}) {
    ExpertAnalysis t;
    t.faster = faster;
    t.primary = primary;
    t.secondary = std::move(secondary);
    return t;
  }
  ExplanationClaims Claims(EngineKind faster, std::vector<PerfFactor> factors,
                           bool costs = false) {
    ExplanationClaims c;
    c.claimed_faster = faster;
    c.factors = std::move(factors);
    c.compared_costs = costs;
    return c;
  }
  ExpertGrader grader_;
};

TEST_F(GraderTest, AccurateWhenPrimaryPresentNoSpurious) {
  auto truth = Truth(EngineKind::kAp, PerfFactor::kNoIndexNestedLoop,
                     {PerfFactor::kHashJoinAdvantage});
  auto result = grader_.Grade(
      truth, Claims(EngineKind::kAp, {PerfFactor::kNoIndexNestedLoop,
                                      PerfFactor::kHashJoinAdvantage}));
  EXPECT_EQ(result.grade, ExplanationGrade::kAccurate);
  // Subset containing the primary is also accurate.
  result = grader_.Grade(
      truth, Claims(EngineKind::kAp, {PerfFactor::kNoIndexNestedLoop}));
  EXPECT_EQ(result.grade, ExplanationGrade::kAccurate);
}

TEST_F(GraderTest, WrongWinner) {
  auto truth = Truth(EngineKind::kTp, PerfFactor::kIndexPointLookup);
  auto result = grader_.Grade(
      truth, Claims(EngineKind::kAp, {PerfFactor::kColumnarScanWidth}));
  EXPECT_EQ(result.grade, ExplanationGrade::kWrong);
}

TEST_F(GraderTest, ImpreciseCases) {
  auto truth = Truth(EngineKind::kAp, PerfFactor::kNoIndexNestedLoop);
  // Missed primary.
  EXPECT_EQ(grader_
                .Grade(truth, Claims(EngineKind::kAp,
                                     {PerfFactor::kColumnarScanWidth}))
                .grade,
            ExplanationGrade::kImprecise);
  // Spurious factor alongside the primary.
  EXPECT_EQ(grader_
                .Grade(truth, Claims(EngineKind::kAp,
                                     {PerfFactor::kNoIndexNestedLoop,
                                      PerfFactor::kLargeOffsetScan}))
                .grade,
            ExplanationGrade::kImprecise);
  // Cost comparison leak.
  EXPECT_EQ(grader_
                .Grade(truth, Claims(EngineKind::kAp,
                                     {PerfFactor::kNoIndexNestedLoop}, true))
                .grade,
            ExplanationGrade::kImprecise);
}

TEST_F(GraderTest, NoneGrade) {
  ExplanationClaims none;
  none.is_none = true;
  EXPECT_EQ(grader_.Grade(Truth(EngineKind::kAp,
                                PerfFactor::kColumnarScanWidth),
                          none)
                .grade,
            ExplanationGrade::kNone);
}

class AnalyzerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  ExpertAnalysis Analyze(const std::string& sql) {
    auto query = system_->Bind(sql);
    EXPECT_TRUE(query.ok()) << query.status();
    HtapQueryOutcome outcome;
    outcome.sql = sql;
    auto plans = system_->PlanBoth(*query);
    EXPECT_TRUE(plans.ok());
    outcome.plans = std::move(*plans);
    outcome.tp_latency_ms = system_->LatencyMs(outcome.plans.tp);
    outcome.ap_latency_ms = system_->LatencyMs(outcome.plans.ap);
    outcome.faster = outcome.tp_latency_ms <= outcome.ap_latency_ms
                         ? EngineKind::kTp
                         : EngineKind::kAp;
    ExpertAnalyzer analyzer(system_->catalog(), system_->config().latency);
    return analyzer.Analyze(outcome, *query);
  }

  static HtapSystem* system_;
};

HtapSystem* AnalyzerTest::system_ = nullptr;

TEST_F(AnalyzerTest, PointLookupCase) {
  auto a = Analyze("SELECT c_name FROM customer WHERE c_custkey = 42");
  EXPECT_EQ(a.faster, EngineKind::kTp);
  EXPECT_EQ(a.primary, PerfFactor::kIndexPointLookup);
}

TEST_F(AnalyzerTest, Example1Case) {
  auto a = Analyze(
      "SELECT COUNT(*) FROM customer, nation, orders "
      "WHERE SUBSTRING(c_phone, 1, 2) IN ('20','40') "
      "AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
      "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
      "AND n_nationkey = c_nationkey");
  EXPECT_EQ(a.faster, EngineKind::kAp);
  EXPECT_EQ(a.primary, PerfFactor::kIndexProbeJoinLargeOuter);
  // The hash-join advantage must be cited.
  bool has_hash = false;
  for (PerfFactor f : a.secondary) {
    has_hash = has_hash || f == PerfFactor::kHashJoinAdvantage;
  }
  EXPECT_TRUE(has_hash);
}

TEST_F(AnalyzerTest, FunctionDefeatsIndexCitedWhenIndexExists) {
  IndexDef idx{"idx_c_phone_x", "customer", {"c_phone"}, false, false};
  ASSERT_TRUE(system_->mutable_catalog().AddIndex(idx).ok());
  auto a = Analyze(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND SUBSTRING(c_phone, 1, 2) IN ('20','40','22')");
  bool cited = false;
  for (PerfFactor f : a.secondary) {
    cited = cited || f == PerfFactor::kFunctionDefeatsIndex;
  }
  EXPECT_TRUE(cited);
  ASSERT_TRUE(system_->mutable_catalog().DropIndex("idx_c_phone_x").ok());
}

TEST_F(AnalyzerTest, TopNStreamingCase) {
  auto a = Analyze("SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5");
  EXPECT_EQ(a.faster, EngineKind::kTp);
  EXPECT_EQ(a.primary, PerfFactor::kTopNIndexOrderStreaming);
}

TEST_F(AnalyzerTest, FullSortVsTopNCase) {
  auto a = Analyze(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC, o_orderkey LIMIT 10");
  EXPECT_EQ(a.faster, EngineKind::kAp);
  EXPECT_EQ(a.primary, PerfFactor::kFullSortVsTopN);
}

TEST_F(AnalyzerTest, ExplanationTextEmbedsFactors) {
  auto a = Analyze("SELECT c_name FROM customer WHERE c_custkey = 42");
  auto extracted = ExtractFactorsFromText(a.explanation);
  ASSERT_FALSE(extracted.empty());
  EXPECT_EQ(extracted[0], a.primary);
  // The whole truth set must round-trip through the text.
  EXPECT_EQ(extracted.size(), a.all().size());
}

}  // namespace
}  // namespace htapex
