#include "engine/join_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

namespace htapex {
namespace {

/// Drains the table's chain for `hash` into a vector, head first.
std::vector<uint32_t> Chain(const JoinTable& table, uint64_t hash) {
  std::vector<uint32_t> out;
  for (uint32_t r = table.Probe(hash); r != JoinTable::kNone;
       r = table.Next(r)) {
    out.push_back(r);
  }
  return out;
}

/// The row-executor oracle's view: equal_range over a live multimap built
/// with the same insertion sequence. The executors rely on libstdc++
/// prepending equal keys (newest first); this helper returns whatever the
/// stdlib actually yields, so the exact-order comparison below pins the
/// JoinTable to the oracle even if that behaviour ever changed.
std::vector<uint32_t> OracleChain(
    const std::unordered_multimap<uint64_t, size_t>& table, uint64_t hash) {
  std::vector<uint32_t> out;
  auto [lo, hi] = table.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    out.push_back(static_cast<uint32_t>(it->second));
  }
  return out;
}

TEST(JoinTableTest, EmptyTableProbesToNone) {
  JoinTable table;
  EXPECT_EQ(table.Probe(0), JoinTable::kNone);
  EXPECT_EQ(table.Probe(0x123456789abcdef0ull), JoinTable::kNone);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.capacity(), 0u);
  table.Prefetch(42);  // must be a safe no-op pre-insert
}

TEST(JoinTableTest, DuplicateChainIsLifoLikeEqualRange) {
  JoinTable table;
  std::unordered_multimap<uint64_t, size_t> oracle;
  const uint64_t kHash = 0x9e3779b97f4a7c15ull;
  for (uint32_t r = 0; r < 12; ++r) {
    table.Insert(kHash, r);
    oracle.emplace(kHash, r);
  }
  std::vector<uint32_t> got = Chain(table, kHash);
  ASSERT_EQ(got.size(), 12u);
  // LIFO: newest insertion first.
  for (uint32_t i = 0; i < 12; ++i) EXPECT_EQ(got[i], 11 - i);
  EXPECT_EQ(got, OracleChain(oracle, kHash));
  EXPECT_EQ(table.size(), 12u);
  EXPECT_EQ(table.distinct_hashes(), 1u);
}

TEST(JoinTableTest, TagAndBucketCollisionsStayDistinct) {
  // Hashes crafted to collide on the bucket index (identical low bits far
  // beyond any capacity this test reaches) AND on the 7-bit tag (identical
  // top bits) while still being different hashes: the table must fall back
  // to the full 64-bit compare and keep the chains separate.
  JoinTable table;
  const uint64_t base = 0xfe00000000000a31ull;
  const uint64_t kStep = 1ull << 32;  // preserves low 32 and top 8 bits
  for (uint32_t h = 0; h < 4; ++h) {
    for (uint32_t r = 0; r < 3; ++r) {
      table.Insert(base + h * kStep, h * 8 + r);
    }
  }
  for (uint32_t h = 0; h < 4; ++h) {
    std::vector<uint32_t> got = Chain(table, base + h * kStep);
    ASSERT_EQ(got.size(), 3u) << h;
    EXPECT_EQ(got[0], h * 8 + 2);
    EXPECT_EQ(got[1], h * 8 + 1);
    EXPECT_EQ(got[2], h * 8 + 0);
  }
  EXPECT_EQ(table.Probe(base + 4 * kStep), JoinTable::kNone);
  EXPECT_EQ(table.distinct_hashes(), 4u);
}

TEST(JoinTableTest, ReservePreventsRehash) {
  JoinTable table;
  table.Reserve(1000);
  const size_t cap = table.capacity();
  EXPECT_GE(cap, 16u);
  for (uint32_t r = 0; r < 1000; ++r) table.Insert(r * 0x9e3779b97f4a7c15ull, r);
  EXPECT_EQ(table.capacity(), cap) << "build loop should never rehash";
  EXPECT_EQ(table.size(), 1000u);
}

/// Differential fuzz against the multimap oracle: random hash streams with
/// deliberately narrow hash spaces (heavy duplicate + collision pressure),
/// NULL-key gaps in the row sequence, growth across several resize
/// thresholds, and exact chain-order equivalence on hit and miss probes.
TEST(JoinTableTest, DifferentialFuzzAgainstMultimapOracle) {
  std::mt19937_64 rng(20260807u);
  // (num rows, hash-space size): small spaces force long duplicate chains
  // and bucket collisions; large ones exercise growth and the tag filter.
  const std::pair<uint32_t, uint64_t> kConfigs[] = {
      {40, 4},      {200, 13},     {500, 71},
      {3000, 257},  {5000, 40009}, {20000, ~0ull},
  };
  for (const auto& [rows, space] : kConfigs) {
    JoinTable table;
    std::unordered_multimap<uint64_t, size_t> oracle;
    if (rows % 2 == 0) table.Reserve(rows);  // alternate: pre-sized / grown
    std::vector<uint64_t> seen;
    for (uint32_t r = 0; r < rows; ++r) {
      if (rng() % 16 == 0) continue;  // NULL key: row index gap, no insert
      // Narrowing keeps the low bits (bucket index) clustered; spreading
      // the remainder across high bits also forces tag collisions.
      uint64_t h = rng();
      if (space != ~0ull) h = (h % space) | ((h % space) << 57);
      table.Insert(h, r);
      oracle.emplace(h, r);
      seen.push_back(h);
    }
    ASSERT_EQ(table.size(), oracle.size());
    // Every inserted hash must yield the oracle's chain, in order.
    for (uint64_t h : seen) {
      EXPECT_EQ(Chain(table, h), OracleChain(oracle, h));
    }
    // Miss probes (random + near-collisions of real hashes) agree too.
    for (int i = 0; i < 2000; ++i) {
      uint64_t h = rng();
      if (i % 2 == 1 && !seen.empty()) {
        h = seen[rng() % seen.size()] ^ (1ull << (rng() % 64));
      }
      EXPECT_EQ(Chain(table, h), OracleChain(oracle, h));
    }
  }
}

TEST(JoinTableTest, GrowthPreservesChainsAcrossThresholds) {
  // Insert straddling several doublings without Reserve; verify after
  // every growth step that earlier chains are still intact and ordered.
  JoinTable table;
  std::unordered_multimap<uint64_t, size_t> oracle;
  size_t last_cap = 0;
  for (uint32_t r = 0; r < 4096; ++r) {
    const uint64_t h = r % 97;  // long chains across many resizes
    table.Insert(h, r);
    oracle.emplace(h, r);
    if (table.capacity() != last_cap) {
      last_cap = table.capacity();
      for (uint64_t probe = 0; probe < 97; ++probe) {
        ASSERT_EQ(Chain(table, probe), OracleChain(oracle, probe))
            << "after growth to " << last_cap;
      }
    }
  }
  EXPECT_GE(last_cap, 128u);
}

}  // namespace
}  // namespace htapex
