#include <gtest/gtest.h>

#include "common/logging.h"

namespace htapex {
namespace {

TEST(LoggingTest, ThresholdGatesLevels) {
  LogLevel saved = GlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarning));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  SetGlobalLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));
  SetGlobalLogLevel(saved);
}

TEST(LoggingTest, MacroShortCircuitsWhenDisabled) {
  LogLevel saved = GlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 42;
  };
  HTAPEX_LOG(Debug) << "never built: " << expensive();
  EXPECT_EQ(evaluations, 0);
  HTAPEX_LOG(Error) << "built: " << expensive();
  EXPECT_EQ(evaluations, 1);
  SetGlobalLogLevel(saved);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace htapex
