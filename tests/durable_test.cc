#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "durable/durable_kb.h"
#include "durable/wal.h"
#include "rag/kb_manager.h"
#include "vectordb/knowledge_base.h"

namespace htapex {
namespace {

constexpr int kDim = 4;

std::string UniqueDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "htapex_durable_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

KbEntry MakeEntry(int i) {
  KbEntry e;
  e.sql = "SELECT " + std::to_string(i);
  e.embedding.assign(kDim, 0.0);
  e.embedding[i % kDim] = 1.0 + 0.25 * i;
  e.tp_plan_json = "{\"op\":\"tp" + std::to_string(i) + "\"}";
  e.ap_plan_json = "{\"op\":\"ap" + std::to_string(i) + "\"}";
  e.faster = (i % 2 == 0) ? EngineKind::kTp : EngineKind::kAp;
  e.tp_latency_ms = 1.0 + i;
  e.ap_latency_ms = 2.0 + i;
  e.expert_explanation = "explanation #" + std::to_string(i);
  return e;
}

/// Full deep equality of two KBs, including tombstones, sequences and the
/// sequence counter — what "recovery lost nothing" means.
void ExpectSameKb(const KnowledgeBase& a, const KnowledgeBase& b) {
  ASSERT_EQ(a.total_entries(), b.total_entries());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.next_sequence(), b.next_sequence());
  for (int id = 0; id < static_cast<int>(a.total_entries()); ++id) {
    SCOPED_TRACE("id=" + std::to_string(id));
    EXPECT_EQ(a.IsExpired(id), b.IsExpired(id));
    const KbEntry* x = a.RawGet(id);
    const KbEntry* y = b.RawGet(id);
    ASSERT_NE(x, nullptr);
    ASSERT_NE(y, nullptr);
    EXPECT_EQ(x->sql, y->sql);
    EXPECT_EQ(x->embedding, y->embedding);
    EXPECT_EQ(x->tp_plan_json, y->tp_plan_json);
    EXPECT_EQ(x->ap_plan_json, y->ap_plan_json);
    EXPECT_EQ(x->faster, y->faster);
    EXPECT_EQ(x->tp_latency_ms, y->tp_latency_ms);
    EXPECT_EQ(x->ap_latency_ms, y->ap_latency_ms);
    EXPECT_EQ(x->expert_explanation, y->expert_explanation);
    EXPECT_EQ(x->sequence, y->sequence);
  }
}

TEST(Crc32Test, KnownVectorsAndIncrementality) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Seeded continuation equals the one-shot checksum.
  std::string s = "hello, durable world";
  uint32_t whole = Crc32(s);
  uint32_t part = Crc32(s.substr(0, 7));
  EXPECT_EQ(Crc32(s.substr(7), part), whole);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  WalRecord insert;
  insert.op = WalRecord::Op::kInsert;
  insert.entry = MakeEntry(3);
  auto decoded = DecodeWalRecord(EncodeWalRecord(insert));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, WalRecord::Op::kInsert);
  EXPECT_EQ(decoded->entry.sql, insert.entry.sql);
  EXPECT_EQ(decoded->entry.embedding, insert.entry.embedding);
  EXPECT_EQ(decoded->entry.expert_explanation,
            insert.entry.expert_explanation);
  EXPECT_EQ(decoded->entry.faster, EngineKind::kAp);

  WalRecord correct;
  correct.op = WalRecord::Op::kCorrect;
  correct.id = 7;
  correct.text = "better explanation";
  decoded = DecodeWalRecord(EncodeWalRecord(correct));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, WalRecord::Op::kCorrect);
  EXPECT_EQ(decoded->id, 7);
  EXPECT_EQ(decoded->text, "better explanation");

  WalRecord expire;
  expire.op = WalRecord::Op::kExpire;
  expire.id = 2;
  decoded = DecodeWalRecord(EncodeWalRecord(expire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, WalRecord::Op::kExpire);
  EXPECT_EQ(decoded->id, 2);

  EXPECT_FALSE(DecodeWalRecord("not json").ok());
  EXPECT_FALSE(DecodeWalRecord("{\"op\":\"bogus\"}").ok());
}

TEST(WalWriterTest, AppendSyncReplay) {
  std::string dir = UniqueDir("wal_roundtrip");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal-000000.log";
  DurabilityMetrics metrics;
  auto writer = WalWriter::Open(path, &metrics);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<std::string> payloads;
  for (int i = 0; i < 5; ++i) {
    WalRecord r;
    r.op = WalRecord::Op::kCorrect;
    r.id = i;
    r.text = "text " + std::to_string(i);
    payloads.push_back(EncodeWalRecord(r));
    ASSERT_TRUE(writer->Append(payloads.back()).ok());
  }
  ASSERT_TRUE(writer->Sync().ok());
  EXPECT_EQ(writer->offset(), writer->synced_offset());
  EXPECT_EQ(metrics.wal_appends.Value(), 5u);
  EXPECT_EQ(metrics.wal_fsyncs.Value(), 1u);

  std::vector<int> ids;
  WalReplayStats stats;
  Status st = ReplayWalSegment(
      path, /*truncate_torn_tail=*/true,
      [&](const WalRecord& r) {
        ids.push_back(r.id);
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.replayed, 5u);
  EXPECT_EQ(stats.truncated, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WalWriterTest, TornTailTruncatedOnReplay) {
  std::string dir = UniqueDir("wal_torn");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal-000000.log";
  {
    auto writer = WalWriter::Open(path, nullptr);
    ASSERT_TRUE(writer.ok());
    WalRecord r;
    r.op = WalRecord::Op::kExpire;
    r.id = 1;
    ASSERT_TRUE(writer->Append(EncodeWalRecord(r)).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  uintmax_t clean_size = std::filesystem::file_size(path);
  {
    // A crash mid-append: only a few bytes of the next frame land on disk.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00\xde\xad", 6);
  }
  ASSERT_GT(std::filesystem::file_size(path), clean_size);
  WalReplayStats stats;
  uint64_t replayed = 0;
  Status st = ReplayWalSegment(
      path, /*truncate_torn_tail=*/true,
      [&](const WalRecord&) {
        ++replayed;
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(replayed, 1u);
  EXPECT_EQ(stats.truncated, 1u);
  EXPECT_EQ(stats.corrupt, 0u);
  // The torn bytes are gone: the writer can append at a clean boundary.
  EXPECT_EQ(std::filesystem::file_size(path), clean_size);
}

TEST(WalWriterTest, CorruptRecordStopsReplay) {
  std::string dir = UniqueDir("wal_corrupt");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal-000000.log";
  {
    auto writer = WalWriter::Open(path, nullptr);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 3; ++i) {
      WalRecord r;
      r.op = WalRecord::Op::kExpire;
      r.id = i;
      ASSERT_TRUE(writer->Append(EncodeWalRecord(r)).ok());
    }
    ASSERT_TRUE(writer->Sync().ok());
  }
  // Flip one payload byte inside the *second* record.
  WalRecord probe;
  probe.op = WalRecord::Op::kExpire;
  probe.id = 0;
  size_t frame = 8 + EncodeWalRecord(probe).size();
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(frame + 8 + 2));
    f.put('\xff');
  }
  WalReplayStats stats;
  uint64_t replayed = 0;
  Status st = ReplayWalSegment(
      path, /*truncate_torn_tail=*/true,
      [&](const WalRecord&) {
        ++replayed;
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // Record 0 survives; record 1 is corrupt; record 2 is unreachable.
  EXPECT_EQ(replayed, 1u);
  EXPECT_EQ(stats.corrupt, 1u);
}

TEST(KnowledgeBaseTest, SaveJsonIsAtomic) {
  std::string dir = UniqueDir("save_atomic");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/kb.json";
  KnowledgeBase kb(kDim);
  ASSERT_TRUE(kb.Insert(MakeEntry(0)).ok());
  ASSERT_TRUE(kb.SaveJson(path).ok());
  // No temp file survives a successful save, and re-saving over an existing
  // export replaces it in one rename (never a half-written file).
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  ASSERT_TRUE(kb.Insert(MakeEntry(1)).ok());
  ASSERT_TRUE(kb.SaveJson(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  KnowledgeBase loaded(kDim);
  ASSERT_TRUE(loaded.LoadJson(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  // A save into a directory that cannot be created fails without touching
  // the destination name.
  EXPECT_FALSE(kb.SaveJson(dir + "/no_such_subdir/kb.json").ok());
  EXPECT_FALSE(std::filesystem::exists(dir + "/no_such_subdir"));
}

TEST(KnowledgeBaseTest, LoadJsonRejectsBadExports) {
  std::string dir = UniqueDir("load_validation");
  std::filesystem::create_directories(dir);
  auto write = [&](const std::string& name, const std::string& text) {
    std::ofstream(dir + "/" + name) << text;
    return dir + "/" + name;
  };
  const char* header = "{\"dim\": 4, \"entries\": [";
  std::string good_entry =
      "{\"id\": 0, \"sql\": \"q\", \"embedding\": [1,0,0,0], "
      "\"sequence\": 5, \"explanation\": \"e\"}";

  // Whole-file dimension mismatch.
  KnowledgeBase kb(kDim);
  std::string p = write("dim.json", "{\"dim\": 3, \"entries\": []}");
  EXPECT_EQ(kb.LoadJson(p).code(), StatusCode::kInvalidArgument);

  // Per-entry embedding dimension mismatch.
  p = write("entry_dim.json",
            std::string(header) +
                "{\"id\": 0, \"sql\": \"q\", \"embedding\": [1,2]}]}");
  EXPECT_EQ(kb.LoadJson(p).code(), StatusCode::kInvalidArgument);

  // Duplicate ids.
  p = write("dup.json", std::string(header) + good_entry + "," +
                            good_entry + "]}");
  EXPECT_EQ(kb.LoadJson(p).code(), StatusCode::kInvalidArgument);

  // Negative id / negative sequence.
  p = write("neg_id.json",
            std::string(header) +
                "{\"id\": -2, \"sql\": \"q\", \"embedding\": [1,0,0,0]}]}");
  EXPECT_EQ(kb.LoadJson(p).code(), StatusCode::kInvalidArgument);
  p = write("neg_seq.json",
            std::string(header) +
                "{\"id\": 0, \"sql\": \"q\", \"embedding\": [1,0,0,0], "
                "\"sequence\": -7}]}");
  EXPECT_EQ(kb.LoadJson(p).code(), StatusCode::kInvalidArgument);

  // Validation is atomic: a bad trailing entry must not half-load the file.
  p = write("half.json", std::string(header) + good_entry +
                             ",{\"id\": 1, \"sql\": \"q2\", "
                             "\"embedding\": [1,2]}]}");
  EXPECT_FALSE(kb.LoadJson(p).ok());
  EXPECT_EQ(kb.size(), 0u);

  // A good file restores sequences and resumes the counter past them.
  p = write("good.json", std::string(header) + good_entry + "]}");
  ASSERT_TRUE(kb.LoadJson(p).ok());
  ASSERT_EQ(kb.size(), 1u);
  EXPECT_EQ(kb.Entries()[0]->sequence, 5);
  EXPECT_EQ(kb.next_sequence(), 6);
  auto id = kb.Insert(MakeEntry(9));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(kb.Get(*id)->sequence, 6);
}

TEST(DurableKbTest, BootstrapRecoverRoundTrip) {
  std::string dir = UniqueDir("roundtrip");
  KnowledgeBase kb(kDim);
  ASSERT_TRUE(kb.Insert(MakeEntry(0)).ok());  // pre-attach seed content
  {
    DurabilityOptions opt;
    opt.dir = dir;
    DurableKnowledgeBase durable(opt);
    EXPECT_FALSE(DurableKnowledgeBase::HasState(dir));
    auto info = durable.Attach(&kb);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_FALSE(info->recovered);  // fresh dir => bootstrap
    EXPECT_TRUE(DurableKnowledgeBase::HasState(dir));
    // Mutations of every kind, logged write-ahead.
    for (int i = 1; i < 6; ++i) ASSERT_TRUE(kb.Insert(MakeEntry(i)).ok());
    ASSERT_TRUE(kb.CorrectExplanation(2, "corrected").ok());
    ASSERT_TRUE(kb.Expire(3).ok());
    EXPECT_EQ(durable.metrics()->wal_appends.Value(), 7u);
    EXPECT_EQ(durable.metrics()->wal_fsyncs.Value(), 7u);  // fsync_every_n=1
  }
  KnowledgeBase recovered(kDim);
  DurabilityOptions opt;
  opt.dir = dir;
  DurableKnowledgeBase durable(opt);
  auto info = durable.Attach(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->recovered);
  EXPECT_EQ(info->snapshot_entries, 1u);  // the bootstrap snapshot
  EXPECT_EQ(info->replayed_records, 7u);
  EXPECT_EQ(info->snapshot_fallbacks, 0u);
  ExpectSameKb(recovered, kb);
  EXPECT_EQ(recovered.Get(2)->expert_explanation, "corrected");
  EXPECT_EQ(recovered.Get(3), nullptr);  // expired stays expired
  // The recovered instance keeps logging: one more mutation round-trips.
  ASSERT_TRUE(recovered.Insert(MakeEntry(6)).ok());
}

TEST(DurableKbTest, RecoverRequiresEmptyKb) {
  std::string dir = UniqueDir("nonempty");
  KnowledgeBase kb(kDim);
  {
    DurabilityOptions opt;
    opt.dir = dir;
    DurableKnowledgeBase durable(opt);
    ASSERT_TRUE(durable.Attach(&kb).ok());
    ASSERT_TRUE(kb.Insert(MakeEntry(0)).ok());
  }
  KnowledgeBase dirty(kDim);
  ASSERT_TRUE(dirty.Insert(MakeEntry(1)).ok());
  DurabilityOptions opt;
  opt.dir = dir;
  DurableKnowledgeBase durable(opt);
  EXPECT_EQ(durable.Attach(&dirty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DurableKbTest, SnapshotTriggerRotatesAndCollectsGarbage) {
  std::string dir = UniqueDir("rotation");
  KnowledgeBase kb(kDim);
  DurabilityOptions opt;
  opt.dir = dir;
  opt.snapshot_every_n = 3;
  opt.keep_generations = 2;
  DurableKnowledgeBase durable(opt);
  ASSERT_TRUE(durable.Attach(&kb).ok());
  for (int i = 0; i < 14; ++i) ASSERT_TRUE(kb.Insert(MakeEntry(i)).ok());
  EXPECT_GE(durable.metrics()->snapshots.Value(), 4u);
  EXPECT_GE(durable.metrics()->wal_rotations.Value(), 4u);
  EXPECT_GT(durable.metrics()->gc_files.Value(), 0u);
  // Only keep_generations snapshots remain on disk; superseded WAL
  // segments are gone too.
  size_t snapshots = 0;
  size_t segments = 0;
  for (const auto& f : std::filesystem::directory_iterator(dir)) {
    std::string name = f.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0) ++snapshots;
    if (name.rfind("wal-", 0) == 0) ++segments;
  }
  EXPECT_EQ(snapshots, 2u);
  EXPECT_LE(segments, 2u);
  // And the trimmed directory still recovers the full state.
  KnowledgeBase recovered(kDim);
  DurabilityOptions ropt;
  ropt.dir = dir;
  DurableKnowledgeBase rdurable(ropt);
  auto info = rdurable.Attach(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ExpectSameKb(recovered, kb);
}

TEST(DurableKbTest, CorruptNewestSnapshotFallsBackOneGeneration) {
  std::string dir = UniqueDir("fallback");
  KnowledgeBase kb(kDim);
  DurabilityOptions opt;
  opt.dir = dir;
  opt.keep_generations = 2;
  DurableKnowledgeBase durable(opt);
  ASSERT_TRUE(durable.Attach(&kb).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(kb.Insert(MakeEntry(i)).ok());
  ASSERT_TRUE(durable.Snapshot().ok());  // generation 1
  ASSERT_TRUE(kb.Insert(MakeEntry(4)).ok());
  durable.Detach();

  // Rot the newest snapshot in place (its checksum no longer matches).
  std::string newest = dir + "/snapshot-000001.json";
  ASSERT_TRUE(std::filesystem::exists(newest));
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(10);
    f.put('\x00');
  }

  KnowledgeBase recovered(kDim);
  DurabilityOptions ropt;
  ropt.dir = dir;
  DurableKnowledgeBase rdurable(ropt);
  auto info = rdurable.Attach(&recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->snapshot_fallbacks, 1u);
  // Generation 0's snapshot was empty, but its WAL segment (kept on disk
  // precisely for this fallback) replays the full history.
  EXPECT_EQ(info->replayed_records, 5u);
  ExpectSameKb(recovered, kb);
}

TEST(DurableKbTest, ShrinkToExpiriesAreDurable) {
  // KbManager::ShrinkTo routes through KnowledgeBase::Expire, so a usage-
  // based shrink is write-ahead logged like any hand-issued mutation.
  std::string dir = UniqueDir("shrink");
  KnowledgeBase kb(kDim);
  DurabilityOptions opt;
  opt.dir = dir;
  DurableKnowledgeBase durable(opt);
  ASSERT_TRUE(durable.Attach(&kb).ok());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(kb.Insert(MakeEntry(i)).ok());
  auto removed = KbManager::ShrinkTo(&kb, 5);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 3);
  EXPECT_EQ(kb.size(), 5u);
  EXPECT_EQ(durable.metrics()->wal_appends.Value(), 11u);  // 8 + 3 expiries
  durable.Detach();

  KnowledgeBase recovered(kDim);
  DurabilityOptions ropt;
  ropt.dir = dir;
  DurableKnowledgeBase rdurable(ropt);
  ASSERT_TRUE(rdurable.Attach(&recovered).ok());
  ExpectSameKb(recovered, kb);
  EXPECT_EQ(recovered.size(), 5u);
}

TEST(DurableKbTest, DetachStopsLogging) {
  std::string dir = UniqueDir("detach");
  KnowledgeBase kb(kDim);
  DurabilityOptions opt;
  opt.dir = dir;
  DurableKnowledgeBase durable(opt);
  ASSERT_TRUE(durable.Attach(&kb).ok());
  ASSERT_TRUE(kb.Insert(MakeEntry(0)).ok());
  durable.Detach();
  ASSERT_TRUE(kb.Insert(MakeEntry(1)).ok());
  EXPECT_EQ(durable.metrics()->wal_appends.Value(), 1u);
  EXPECT_EQ(kb.mutation_sink(), nullptr);
}

}  // namespace
}  // namespace htapex
