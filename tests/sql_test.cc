#include <gtest/gtest.h>

#include "catalog/tpch.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace htapex {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT c_name FROM customer WHERE c_custkey = 42;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "c_name");
  EXPECT_TRUE((*tokens)[4].IsKeyword("WHERE"));
}

TEST(LexerTest, StringsAndEscapes) {
  auto tokens = Tokenize("'egypt' 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "egypt");
  EXPECT_EQ((*tokens)[1].text, "it's");
  EXPECT_FALSE(Tokenize("'unterminated").ok());
}

TEST(LexerTest, OperatorsAndNumbers) {
  auto tokens = Tokenize("<= >= <> != 3.14 42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<>");  // != normalized
  EXPECT_EQ((*tokens)[4].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[5].type, TokenType::kInteger);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT -- a comment\n1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
}

TEST(ParserTest, Example1Query) {
  // The exact query from the paper's Example 1.
  const char* sql =
      "SELECT COUNT(*) FROM customer, nation, orders "
      "WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40', '22', '30', '39', "
      "'42', '21') AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
      "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
      "AND n_nationkey = c_nationkey;";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->from.size(), 3u);
  EXPECT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr->kind, ExprKind::kAggregate);
  EXPECT_TRUE(stmt->items[0].expr->count_star);
  ASSERT_NE(stmt->where, nullptr);
}

TEST(ParserTest, TopNQuery) {
  auto stmt = ParseSelect(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "WHERE o_orderdate >= DATE '1995-01-01' "
      "ORDER BY o_totalprice DESC LIMIT 10 OFFSET 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_EQ(stmt->limit.value(), 10);
  EXPECT_EQ(stmt->offset.value(), 5);
}

TEST(ParserTest, ExplicitJoinNormalized) {
  auto stmt = ParseSelect(
      "SELECT c_name FROM customer JOIN orders ON o_custkey = c_custkey "
      "WHERE o_orderstatus = 'p'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->from.size(), 2u);
  // ON condition folded into WHERE as a conjunct.
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ExprKind::kAnd);
}

TEST(ParserTest, GroupByHavingAliases) {
  auto stmt = ParseSelect(
      "SELECT c_mktsegment, COUNT(*) AS cnt FROM customer "
      "GROUP BY c_mktsegment ORDER BY cnt DESC");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->group_by.size(), 1u);
  EXPECT_EQ(stmt->items[1].alias, "cnt");
}

TEST(ParserTest, BetweenNotLike) {
  auto stmt = ParseSelect(
      "SELECT * FROM orders WHERE o_totalprice BETWEEN 100 AND 200 "
      "AND o_comment NOT LIKE '%special%'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->select_star);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = ParseSelect("SELECT 1 + 2 * 3 FROM nation");
  ASSERT_TRUE(stmt.ok());
  // 1 + (2 * 3)
  const Expr& e = *stmt->items[0].expr;
  ASSERT_EQ(e.kind, ExprKind::kArithmetic);
  EXPECT_EQ(e.arith_op, ArithOp::kAdd);
  EXPECT_EQ(e.children[1]->kind, ExprKind::kArithmetic);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage tokens ,").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a IN (1,").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM DATE").ok());
}

TEST(ParserTest, RoundTripToString) {
  const char* sql =
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND c_mktsegment = 'machinery' ORDER BY COUNT(*) DESC LIMIT 3";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  // GROUP BY validation happens in the binder, not the parser.
  std::string rendered = stmt->ToString();
  auto reparsed = ParseSelect(rendered);
  ASSERT_TRUE(reparsed.ok()) << "could not reparse: " << rendered;
  EXPECT_EQ(reparsed->ToString(), rendered);
}

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(tpch::BuildCatalog(&catalog_, 1.0).ok()); }
  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesColumnsAndSlots) {
  auto q = ParseAndBind(catalog_,
                        "SELECT c_name FROM customer, nation "
                        "WHERE n_nationkey = c_nationkey AND n_name = 'egypt'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->num_tables(), 2);
  EXPECT_EQ(q->tables[0].flat_offset, 0);
  EXPECT_EQ(q->tables[1].flat_offset, 8);  // customer has 8 columns
  EXPECT_EQ(q->total_slots, 12);           // + nation's 4
  const Expr& sel = *q->stmt.items[0].expr;
  EXPECT_EQ(sel.bound_table, 0);
  EXPECT_EQ(sel.flat_slot, 1);  // c_name is column 1
  EXPECT_EQ(sel.result_type, DataType::kString);
}

TEST_F(BinderTest, ConjunctClassification) {
  auto q = ParseAndBind(
      catalog_,
      "SELECT COUNT(*) FROM customer, nation, orders "
      "WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40') "
      "AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
      "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
      "AND n_nationkey = c_nationkey");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->conjuncts.size(), 6u);
  int joins = 0, sargable = 0, defeated = 0;
  for (const auto& c : q->conjuncts) {
    if (c.is_equi_join) ++joins;
    if (c.sargable) ++sargable;
    if (c.function_over_column) ++defeated;
  }
  EXPECT_EQ(joins, 2);
  EXPECT_EQ(sargable, 3);  // c_mktsegment, n_name, o_orderstatus
  EXPECT_EQ(defeated, 1);  // substring(c_phone,...) defeats any c_phone index
}

TEST_F(BinderTest, SargableShapes) {
  auto q = ParseAndBind(catalog_,
                        "SELECT c_name FROM customer WHERE c_custkey BETWEEN "
                        "10 AND 20 AND c_acctbal > 0 AND c_name LIKE 'cust%'");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->conjuncts.size(), 3u);
  EXPECT_TRUE(q->conjuncts[0].sargable);   // BETWEEN literals
  EXPECT_TRUE(q->conjuncts[1].sargable);   // > literal
  EXPECT_FALSE(q->conjuncts[2].sargable);  // LIKE is not sargable here
}

TEST_F(BinderTest, AliasResolution) {
  auto q = ParseAndBind(catalog_,
                        "SELECT c.c_name FROM customer c, orders o "
                        "WHERE o.o_custkey = c.c_custkey");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->conjuncts.size(), 1u);
  EXPECT_TRUE(q->conjuncts[0].is_equi_join);
}

TEST_F(BinderTest, SelectStarExpansion) {
  auto q = ParseAndBind(catalog_, "SELECT * FROM nation");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->stmt.items.size(), 4u);
  EXPECT_FALSE(q->stmt.select_star);
}

TEST_F(BinderTest, OrderByAlias) {
  auto q = ParseAndBind(catalog_,
                        "SELECT c_mktsegment, COUNT(*) AS cnt FROM customer "
                        "GROUP BY c_mktsegment ORDER BY cnt DESC");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->stmt.order_by.size(), 1u);
  EXPECT_EQ(q->stmt.order_by[0].expr->kind, ExprKind::kAggregate);
}

TEST_F(BinderTest, Errors) {
  EXPECT_FALSE(ParseAndBind(catalog_, "SELECT x FROM customer").ok());
  EXPECT_FALSE(ParseAndBind(catalog_, "SELECT c_name FROM missing_table").ok());
  // Ambiguous without qualifier: both orders and lineitem... use custkey vs
  // two tables exposing the same column name via self-join aliases.
  EXPECT_FALSE(
      ParseAndBind(catalog_, "SELECT c_name FROM customer a, customer b").ok());
  // Aggregate mixed with non-grouped column.
  EXPECT_FALSE(
      ParseAndBind(catalog_, "SELECT c_name, COUNT(*) FROM customer").ok());
  // Aggregate in WHERE.
  EXPECT_FALSE(
      ParseAndBind(catalog_, "SELECT COUNT(*) FROM customer WHERE COUNT(*) > 1")
          .ok());
  // Duplicate alias.
  EXPECT_FALSE(
      ParseAndBind(catalog_, "SELECT 1 FROM customer c, orders c").ok());
  // Unknown function.
  EXPECT_FALSE(
      ParseAndBind(catalog_, "SELECT frobnicate(c_name) FROM customer").ok());
}

TEST_F(BinderTest, ExpressionEvaluation) {
  auto q = ParseAndBind(catalog_,
                        "SELECT c_name FROM customer WHERE "
                        "SUBSTRING(c_phone, 1, 2) IN ('20', '25')");
  ASSERT_TRUE(q.ok()) << q.status();
  // Build a composite row: customer has 8 columns; c_phone is slot 4.
  std::vector<Value> row(8, Value::Null());
  row[4] = Value::Str("25-989-741-2988");
  auto pass = EvalPredicate(*q->conjuncts[0].expr, row);
  ASSERT_TRUE(pass.ok()) << pass.status();
  EXPECT_TRUE(*pass);
  row[4] = Value::Str("15-989-741-2988");
  pass = EvalPredicate(*q->conjuncts[0].expr, row);
  ASSERT_TRUE(pass.ok());
  EXPECT_FALSE(*pass);
}

TEST_F(BinderTest, NullSemantics) {
  auto q = ParseAndBind(catalog_,
                        "SELECT c_name FROM customer WHERE c_acctbal > 100");
  ASSERT_TRUE(q.ok());
  std::vector<Value> row(8, Value::Null());
  auto pass = EvalPredicate(*q->conjuncts[0].expr, row);
  ASSERT_TRUE(pass.ok());
  EXPECT_FALSE(*pass);  // NULL > 100 is not true
}

}  // namespace
}  // namespace htapex
