#include <gtest/gtest.h>

#include "engine/htap_system.h"
#include "engine/latency_model.h"
#include "plan/cardinality.h"
#include "plan/plan_node.h"
#include "plan/planner_util.h"

namespace htapex {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static HtapSystem* system_;
};

HtapSystem* PlanTest::system_ = nullptr;

TEST_F(PlanTest, ExplainJsonHasTableIIKeys) {
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM customer, nation WHERE n_nationkey = c_nationkey "
      "AND n_name = 'egypt'");
  ASSERT_TRUE(query.ok());
  auto plans = system_->PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  JsonValue tp = plans->tp.ToJson();
  EXPECT_FALSE(tp.GetString("Node Type").empty());
  EXPECT_GT(tp.GetDouble("Total Cost"), 0.0);
  EXPECT_GE(tp.GetInt("Plan Rows"), 1);
  ASSERT_NE(tp.Find("Plans"), nullptr);
  // Round-trips through the pythonish flavour (what prompts embed).
  auto parsed = JsonValue::Parse(plans->tp.Explain());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetString("Node Type"), tp.GetString("Node Type"));
}

TEST_F(PlanTest, TreeSizeAndTreeString) {
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM customer, nation, orders WHERE n_nationkey = "
      "c_nationkey AND o_custkey = c_custkey");
  ASSERT_TRUE(query.ok());
  auto plans = system_->PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  EXPECT_GE(plans->tp.root->TreeSize(), 5);
  std::string text = plans->tp.root->ToTreeString();
  EXPECT_NE(text.find("Group aggregate"), std::string::npos);
  EXPECT_NE(text.find("customer"), std::string::npos);
}

TEST_F(PlanTest, CardinalityEqualitySelectivity) {
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'");
  ASSERT_TRUE(query.ok());
  CardinalityEstimator est(system_->catalog());
  ASSERT_EQ(query->conjuncts.size(), 1u);
  // NDV of o_orderstatus is 3.
  EXPECT_NEAR(est.ConjunctSelectivity(*query, query->conjuncts[0]), 1.0 / 3,
              1e-9);
  EXPECT_NEAR(est.FilteredTableRows(*query, 0),
              static_cast<double>(system_->catalog().RowCount("orders")) / 3,
              1.0);
}

TEST_F(PlanTest, CardinalityInAndBetween) {
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM nation WHERE n_regionkey IN (0, 1) "
      "AND n_nationkey BETWEEN 0 AND 11");
  ASSERT_TRUE(query.ok());
  CardinalityEstimator est(system_->catalog());
  // n_regionkey NDV = 5, 2 items -> 0.4.
  EXPECT_NEAR(est.ConjunctSelectivity(*query, query->conjuncts[0]), 0.4, 1e-9);
  // BETWEEN 0 AND 11 over [0, 24] spans ~11/24.
  EXPECT_NEAR(est.ConjunctSelectivity(*query, query->conjuncts[1]), 11.0 / 24,
              0.05);
}

TEST_F(PlanTest, FunctionPredicateUsesDefaultSelectivity) {
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) = '20'");
  ASSERT_TRUE(query.ok());
  CardinalityEstimator est(system_->catalog());
  EXPECT_NEAR(est.ConjunctSelectivity(*query, query->conjuncts[0]),
              CardinalityEstimator::kFunctionPredicateSelectivity, 1e-9);
}

TEST_F(PlanTest, JoinOutputUsesMaxNdv) {
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey");
  ASSERT_TRUE(query.ok());
  CardinalityEstimator est(system_->catalog());
  const ConjunctInfo& join = query->conjuncts[0];
  ASSERT_TRUE(join.is_equi_join);
  double out = est.JoinOutputRows(*query, join, 1000.0, 1'000'000.0);
  // NDV(c_custkey) = 15M at SF 100 -> tiny output per customer subset.
  EXPECT_GT(out, 0.0);
  EXPECT_LT(out, 1000.0 * 1'000'000.0 / 1'000'000.0);
}

TEST_F(PlanTest, RewriteForOutputErrors) {
  auto query = system_->Bind(
      "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment");
  ASSERT_TRUE(query.ok());
  OutputSlotMap slots;
  slots["c_mktsegment"] = 0;
  // COUNT(*) missing from the map -> error.
  auto rewritten = RewriteForOutput(*query->stmt.items[1].expr, slots);
  EXPECT_FALSE(rewritten.ok());
  slots["COUNT(*)"] = 1;
  rewritten = RewriteForOutput(*query->stmt.items[1].expr, slots);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->flat_slot, 1);
}

TEST_F(PlanTest, OutputNamesUseAliases) {
  auto query = system_->Bind(
      "SELECT c_mktsegment seg, COUNT(*) AS cnt FROM customer "
      "GROUP BY c_mktsegment");
  ASSERT_TRUE(query.ok());
  auto names = OutputNames(*query);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "seg");
  EXPECT_EQ(names[1], "cnt");
}

TEST_F(PlanTest, LatencyBreakdownSumsToTotal) {
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey");
  ASSERT_TRUE(query.ok());
  auto plans = system_->PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  std::vector<NodeLatency> breakdown;
  double total = system_->LatencyMs(plans->tp, &breakdown);
  ASSERT_FALSE(breakdown.empty());
  // Root inclusive latency + startup == total.
  EXPECT_NEAR(breakdown[0].millis + system_->config().latency.tp_startup_ms,
              total, total * 1e-9);
  // Self-times are non-negative and no node's self exceeds the total.
  for (const NodeLatency& nl : breakdown) {
    EXPECT_GE(nl.self_millis, 0.0);
    EXPECT_LE(nl.self_millis, total);
  }
}

TEST_F(PlanTest, LatencyModelMonotoneInParallelism) {
  auto query = system_->Bind(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey");
  ASSERT_TRUE(query.ok());
  auto plans = system_->PlanBoth(*query);
  ASSERT_TRUE(plans.ok());
  LatencyParams slow = system_->config().latency;
  slow.ap_parallelism = 1.0;
  LatencyParams fast = slow;
  fast.ap_parallelism = 16.0;
  EXPECT_GT(EstimateLatencyMs(plans->ap, slow),
            EstimateLatencyMs(plans->ap, fast));
  // TP is unaffected by AP parallelism.
  EXPECT_DOUBLE_EQ(EstimateLatencyMs(plans->tp, slow),
                   EstimateLatencyMs(plans->tp, fast));
}

TEST_F(PlanTest, StreamingLimitBeatsUnboundedScan) {
  auto small = system_->Bind(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5");
  auto big = system_->Bind(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 500000");
  ASSERT_TRUE(small.ok() && big.ok());
  auto small_plans = system_->PlanBoth(*small);
  auto big_plans = system_->PlanBoth(*big);
  ASSERT_TRUE(small_plans.ok() && big_plans.ok());
  EXPECT_LT(system_->LatencyMs(small_plans->tp) * 100,
            system_->LatencyMs(big_plans->tp));
}

TEST(PlanNodeTest, EngineAndOpNames) {
  EXPECT_STREQ(EngineName(EngineKind::kTp), "TP");
  EXPECT_STREQ(EngineName(EngineKind::kAp), "AP");
  EXPECT_STREQ(PlanOpName(PlanOp::kColumnScan), "Columnar scan");
  EXPECT_STREQ(PlanOpName(PlanOp::kGroupAggregate), "Group aggregate");
  EXPECT_STREQ(PlanOpName(PlanOp::kNestedLoopJoin), "Nested loop inner join");
}

}  // namespace
}  // namespace htapex
