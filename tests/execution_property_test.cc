// Property tests: for ANY generated workload query, the TP and AP engines —
// different optimizers, different join strategies, different storage — must
// produce identical results when really executed over loaded TPC-H data.
// This pins down that the plan trees the explainer reasons about have real
// semantics.
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "engine/htap_system.h"
#include "common/kernels.h"
#include "workload/query_generator.h"

namespace htapex {
namespace {

/// Runs the AP plan for `sql` through both AP executors (row-at-a-time
/// oracle vs vectorized morsel-driven) and asserts byte-identical
/// fingerprints and identical per-node ExecStats.
void ExpectRowVecParity(const HtapSystem& system, const std::string& sql) {
  auto query = system.Bind(sql);
  ASSERT_TRUE(query.ok()) << sql << ": " << query.status();
  auto plans = system.PlanBoth(*query);
  ASSERT_TRUE(plans.ok()) << sql;
  ExecStats row_stats, vec_stats;
  auto row_res =
      system.ExecuteWithMode(ExecMode::kRow, plans->ap, *query, &row_stats);
  auto vec_res = system.ExecuteWithMode(ExecMode::kVectorized, plans->ap,
                                        *query, &vec_stats);
  ASSERT_TRUE(row_res.ok()) << sql << ": " << row_res.status();
  ASSERT_TRUE(vec_res.ok()) << sql << ": " << vec_res.status();
  EXPECT_EQ(row_res->Fingerprint(), vec_res->Fingerprint()) << sql;
  // Identical per-node EXPLAIN ANALYZE counts: same node set, same counts.
  EXPECT_EQ(row_stats.actual_rows.size(), vec_stats.actual_rows.size()) << sql;
  for (const auto& [node, rows] : row_stats.actual_rows) {
    auto it = vec_stats.actual_rows.find(node);
    ASSERT_NE(it, vec_stats.actual_rows.end())
        << sql << ": vectorized executor missing stats for "
        << PlanOpName(node->op);
    EXPECT_EQ(it->second, rows) << sql << " at " << PlanOpName(node->op);
  }
}

bool HasOp(const PlanNode& node, PlanOp op) {
  if (node.op == op) return true;
  for (const auto& c : node.children) {
    if (HasOp(*c, op)) return true;
  }
  return false;
}

/// A hash join whose build side itself contains a hash join — a shape only
/// the DP enumerator produces (greedy always builds on a base table).
bool HasBushyJoin(const PlanNode& node) {
  if (node.op == PlanOp::kHashJoin && node.children.size() == 2 &&
      HasOp(*node.children[1], PlanOp::kHashJoin)) {
    return true;
  }
  for (const auto& c : node.children) {
    if (HasBushyJoin(*c)) return true;
  }
  return false;
}

class ExecutionPropertyTest
    : public ::testing::TestWithParam<QueryPattern> {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    // Statistics at the small loaded scale too, so the generators produce
    // keys/offsets that exist in the physical data.
    config.stats_scale_factor = 0.02;
    config.data_scale_factor = 0.02;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static HtapSystem* system_;
};

HtapSystem* ExecutionPropertyTest::system_ = nullptr;

TEST_P(ExecutionPropertyTest, EnginesAgreeOnGeneratedQueries) {
  QueryGenerator gen(system_->config().stats_scale_factor,
                     0xabcd ^ static_cast<uint64_t>(GetParam()));
  int executed = 0;
  for (int i = 0; i < 8; ++i) {
    GeneratedQuery gq = gen.Generate(GetParam());
    auto outcome = system_->RunQuery(gq.sql);
    ASSERT_TRUE(outcome.ok()) << gq.sql << ": " << outcome.status();
    ASSERT_TRUE(outcome->tp_result.has_value());
    EXPECT_TRUE(outcome->results_match)
        << gq.sql << "\nTP rows: " << outcome->tp_result->rows.size()
        << " AP rows: " << outcome->ap_result->rows.size();
    ++executed;
  }
  EXPECT_EQ(executed, 8);
}

TEST_P(ExecutionPropertyTest, RowAndVectorizedExecutorsAgree) {
  // Differential property: randomized plans through both AP executors must
  // produce identical fingerprints AND identical per-node ExecStats.
  QueryGenerator gen(system_->config().stats_scale_factor,
                     0x7e57 ^ static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 8; ++i) {
    GeneratedQuery gq = gen.Generate(GetParam());
    ExpectRowVecParity(*system_, gq.sql);
  }
}

TEST_P(ExecutionPropertyTest, ParityHoldsOnScalarKernelBackend) {
  // Force the scalar kernel backend so parity cannot silently depend on a
  // particular SIMD implementation; restore the active backend after.
  kernels::Backend prior = kernels::ActiveBackend();
  ASSERT_TRUE(kernels::ForceBackendForTest(kernels::Backend::kScalar));
  QueryGenerator gen(system_->config().stats_scale_factor,
                     0x5ca1a ^ static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 3; ++i) {
    GeneratedQuery gq = gen.Generate(GetParam());
    ExpectRowVecParity(*system_, gq.sql);
  }
  ASSERT_TRUE(kernels::ForceBackendForTest(prior));
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, ExecutionPropertyTest,
    ::testing::ValuesIn(AllQueryPatterns()),
    [](const ::testing::TestParamInfo<QueryPattern>& info) {
      return QueryPatternName(info.param);
    });

using NonEmptyTest = ExecutionPropertyTest;

TEST_F(ExecutionPropertyTest, SiftedAndBushyPlansKeepRowVecParity) {
  // The parameterized differential above only exercises the PR-9 plan
  // shapes if the optimizer actually emits them. Assert that star/chain
  // joins really produce sifted scans and bushy trees at this scale, and
  // that parity holds on exactly those plans.
  QueryGenerator gen(system_->config().stats_scale_factor, 0x51f7);
  int sifted = 0, bushy = 0;
  for (int i = 0; i < 24; ++i) {
    GeneratedQuery gq = gen.Generate(QueryPattern::kJoinStarChain);
    auto query = system_->Bind(gq.sql);
    ASSERT_TRUE(query.ok()) << gq.sql;
    auto plans = system_->PlanBoth(*query);
    ASSERT_TRUE(plans.ok()) << gq.sql;
    bool has_sift = HasOp(*plans->ap.root, PlanOp::kSiftedScan);
    bool has_bushy = HasBushyJoin(*plans->ap.root);
    if (has_sift) ++sifted;
    if (has_bushy) ++bushy;
    if (has_sift || has_bushy) ExpectRowVecParity(*system_, gq.sql);
  }
  EXPECT_GT(sifted, 0) << "no star/chain query produced a sifted scan";
  EXPECT_GT(bushy, 0) << "no star/chain query produced a bushy join";
}

TEST_F(ExecutionPropertyTest, SelectedQueriesReturnExpectedShapes) {
  // A few queries with hand-checkable semantics at this scale.
  auto outcome = system_->RunQuery("SELECT COUNT(*) FROM customer");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 3000);  // 150k * 0.02

  outcome = system_->RunQuery(
      "SELECT COUNT(*) FROM customer, nation "
      "WHERE n_nationkey = c_nationkey");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->tp_result->rows[0][0].AsInt(), 3000);  // FK join total
  EXPECT_TRUE(outcome->results_match);

  outcome = system_->RunQuery(
      "SELECT n_regionkey, COUNT(*) FROM nation GROUP BY n_regionkey "
      "ORDER BY n_regionkey");
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->tp_result->rows.size(), 5u);
  for (const Row& row : outcome->tp_result->rows) {
    EXPECT_EQ(row[1].AsInt(), 5);  // 25 nations over 5 regions
  }
}

TEST_F(ExecutionPropertyTest, LimitOffsetWindowsAreConsistent) {
  // OFFSET windows taken from a deterministic order must tile the
  // full ordered output.
  auto all = system_->RunQuery(
      "SELECT n_nationkey FROM nation ORDER BY n_nationkey");
  ASSERT_TRUE(all.ok());
  std::vector<int64_t> keys;
  for (const Row& row : all->tp_result->rows) keys.push_back(row[0].AsInt());
  ASSERT_EQ(keys.size(), 25u);
  for (int offset = 0; offset < 25; offset += 7) {
    auto window = system_->RunQuery(
        StrFormat("SELECT n_nationkey FROM nation ORDER BY n_nationkey "
                  "LIMIT 7 OFFSET %d",
                  offset));
    ASSERT_TRUE(window.ok());
    EXPECT_TRUE(window->results_match);
    const auto& rows = window->tp_result->rows;
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i][0].AsInt(), keys[static_cast<size_t>(offset) + i]);
    }
  }
}

TEST_F(ExecutionPropertyTest, AggregatesAreOrderInsensitive) {
  // SUM/AVG/MIN/MAX over the same filter must agree across engines even
  // though the engines visit rows in different orders.
  const char* sql =
      "SELECT COUNT(*), SUM(o_totalprice), AVG(o_totalprice), "
      "MIN(o_totalprice), MAX(o_totalprice) FROM orders "
      "WHERE o_orderstatus = 'f'";
  auto outcome = system_->RunQuery(sql);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->results_match);
  const Row& row = outcome->tp_result->rows[0];
  ASSERT_EQ(row.size(), 5u);
  double count = row[0].AsDouble();
  double sum = row[1].AsDouble();
  double avg = row[2].AsDouble();
  EXPECT_GT(count, 0);
  EXPECT_NEAR(avg, sum / count, 1e-6 * sum);
  EXPECT_LE(row[3].AsDouble(), avg);
  EXPECT_GE(row[4].AsDouble(), avg);
}

}  // namespace
}  // namespace htapex
