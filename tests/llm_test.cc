#include <gtest/gtest.h>

#include "engine/htap_system.h"
#include "llm/llm.h"
#include "llm/plan_reader.h"
#include "llm/prompt.h"
#include "llm/realizer.h"

namespace htapex {
namespace {

TEST(PromptTest, RenderContainsAllSections) {
  PromptBuilder builder;
  KnowledgeItem item;
  item.sql = "SELECT 1 FROM nation";
  item.tp_plan_json = "{'Node Type': 'Table Scan'}";
  item.ap_plan_json = "{'Node Type': 'Columnar scan'}";
  item.faster = EngineKind::kAp;
  item.expert_explanation = "AP is faster because reasons.";
  Prompt p = builder.Build({item}, "SELECT 2 FROM region",
                           "{'Node Type': 'Table Scan'}",
                           "{'Node Type': 'Columnar scan'}", EngineKind::kTp);
  std::string text = p.Render();
  EXPECT_NE(text.find("Background information:"), std::string::npos);
  EXPECT_NE(text.find("not allowed to compare the cost estimates"),
            std::string::npos);
  EXPECT_NE(text.find("Task description:"), std::string::npos);
  EXPECT_NE(text.find("return None"), std::string::npos);
  EXPECT_NE(text.find("c_phone"), std::string::npos);  // default user context
  EXPECT_NE(text.find("KNOWLEDGE 1:"), std::string::npos);
  EXPECT_NE(text.find("QUESTION:"), std::string::npos);
  EXPECT_NE(text.find("new execution result: TP is faster"), std::string::npos);
  EXPECT_GT(p.ApproxTokens(), 300);
}

TEST(PlanReaderTest, ReadsTableIIStylePlan) {
  const char* tp_plan =
      "{'Node Type': 'Group aggregate', 'Total Cost': 5213.0, 'Plan Rows': 1,"
      " 'Plans': [{'Node Type': 'Nested loop inner join', 'Plan Rows': 379,"
      " 'Plans': [{'Node Type': 'Filter', 'Plan Rows': 2, 'Condition':"
      " 'substring(c_phone, 1, 2) IN (\\'20\\')',"
      " 'Plans': [{'Node Type': 'Table Scan', 'Relation Name': 'customer',"
      " 'Table Rows': 15000000, 'Plan Rows': 1142}]},"
      " {'Node Type': 'Filter', 'Plan Rows': 13}]}]}";
  auto surface = ReadPlanSurface(tp_plan);
  ASSERT_TRUE(surface.ok()) << surface.status();
  EXPECT_TRUE(surface->HasNode("Group aggregate"));
  EXPECT_TRUE(surface->HasNode("Nested loop inner join"));
  EXPECT_EQ(surface->num_joins, 1);
  EXPECT_TRUE(surface->relations.count("customer") > 0);
  EXPECT_TRUE(surface->condition_applies_function);
  EXPECT_DOUBLE_EQ(surface->root_cost, 5213.0);
  EXPECT_DOUBLE_EQ(surface->max_table_rows, 15000000.0);
}

TEST(PlanReaderTest, RejectsGarbage) {
  EXPECT_FALSE(ReadPlanSurface("not json at all {{{").ok());
}

TEST(PlanReaderTest, SignatureSimilarity) {
  PairSignature a, b;
  a.faster = b.faster = EngineKind::kAp;
  EXPECT_DOUBLE_EQ(a.Similarity(b), 1.0);
  b.tp_plain_nlj = true;
  EXPECT_LT(a.Similarity(b), 1.0);
  b.faster = EngineKind::kTp;
  EXPECT_DOUBLE_EQ(a.Similarity(b), 0.0);  // result mismatch zeroes it
}

TEST(RealizerTest, EmbedsCanonicalPhrasesAndParsesBack) {
  ExplanationClaims claims;
  claims.claimed_faster = EngineKind::kAp;
  claims.factors = {PerfFactor::kNoIndexNestedLoop,
                    PerfFactor::kHashJoinAdvantage};
  PairSurface surface;
  surface.ap.relations = {"orders", "customer"};
  std::string text =
      RealizeExplanation(claims, surface, DoubaoPersona(), "SELECT 1");
  ExplanationClaims parsed = ClaimsFromText(text);
  EXPECT_EQ(parsed.claimed_faster, EngineKind::kAp);
  ASSERT_EQ(parsed.factors.size(), 2u);
  EXPECT_FALSE(parsed.compared_costs);
}

TEST(RealizerTest, CostLeakIsDetectable) {
  ExplanationClaims claims;
  claims.claimed_faster = EngineKind::kAp;
  claims.factors = {PerfFactor::kColumnarScanWidth};
  claims.compared_costs = true;
  PairSurface surface;
  surface.tp.root_cost = 5213;
  surface.ap.root_cost = 152;
  std::string text =
      RealizeExplanation(claims, surface, Gpt4Persona(), "SELECT 1");
  EXPECT_TRUE(ClaimsFromText(text).compared_costs);
}

TEST(RealizerTest, PersonasPhraseDifferently) {
  ExplanationClaims claims;
  claims.claimed_faster = EngineKind::kTp;
  claims.factors = {PerfFactor::kIndexPointLookup};
  PairSurface surface;
  std::string a =
      RealizeExplanation(claims, surface, DoubaoPersona(), "SELECT 99");
  std::string b =
      RealizeExplanation(claims, surface, Gpt4Persona(), "SELECT 99");
  EXPECT_NE(a, b);  // styles differ...
  // ...but the claims are identical.
  EXPECT_EQ(ClaimsFromText(a).factors.size(), ClaimsFromText(b).factors.size());
}

TEST(TimingTest, ModelsPaperScales) {
  PromptBuilder builder;
  Prompt p = builder.Build({}, "SELECT 1 FROM nation", "{}", "{}",
                           EngineKind::kTp);
  std::string text(1200, 'x');
  // ~200 words of output
  for (int i = 0; i < 200; ++i) text += " word";
  LlmTiming t = ComputeTiming(p, text, DoubaoPersona());
  EXPECT_LE(t.thinking_ms, 2000.0);  // paper: thinking <= 2 s
  EXPECT_GT(t.generation_ms, 2000.0);
  EXPECT_LT(t.generation_ms, 30000.0);
  EXPECT_GT(t.prompt_tokens, 0);
}

class LlmModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new HtapSystem();
    HtapConfig config;
    config.data_scale_factor = 0.0;
    ASSERT_TRUE(system_->Init(config).ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  /// Builds a prompt whose question is `sql` with `knowledge` items.
  Prompt MakePrompt(const std::string& sql,
                    std::vector<KnowledgeItem> knowledge) {
    auto query = system_->Bind(sql);
    EXPECT_TRUE(query.ok());
    auto plans = system_->PlanBoth(*query);
    EXPECT_TRUE(plans.ok());
    EngineKind faster = system_->LatencyMs(plans->tp) <=
                                system_->LatencyMs(plans->ap)
                            ? EngineKind::kTp
                            : EngineKind::kAp;
    PromptBuilder builder;
    return builder.Build(std::move(knowledge), sql, plans->tp.Explain(),
                         plans->ap.Explain(), faster);
  }

  KnowledgeItem MakeKnowledge(const std::string& sql) {
    auto query = system_->Bind(sql);
    EXPECT_TRUE(query.ok());
    auto plans = system_->PlanBoth(*query);
    EXPECT_TRUE(plans.ok());
    HtapQueryOutcome outcome;
    outcome.plans = std::move(*plans);
    outcome.tp_latency_ms = system_->LatencyMs(outcome.plans.tp);
    outcome.ap_latency_ms = system_->LatencyMs(outcome.plans.ap);
    outcome.faster = outcome.tp_latency_ms <= outcome.ap_latency_ms
                         ? EngineKind::kTp
                         : EngineKind::kAp;
    ExpertAnalyzer analyzer(system_->catalog(), system_->config().latency);
    ExpertAnalysis truth = analyzer.Analyze(outcome, *query);
    KnowledgeItem item;
    item.sql = sql;
    item.tp_plan_json = outcome.plans.tp.Explain();
    item.ap_plan_json = outcome.plans.ap.Explain();
    item.faster = outcome.faster;
    item.expert_explanation = truth.explanation;
    return item;
  }

  static HtapSystem* system_;
};

HtapSystem* LlmModelTest::system_ = nullptr;

TEST_F(LlmModelTest, RagAdoptsMatchingKnowledge) {
  // Knowledge: a 3-table join; question: a very similar join.
  auto llm = MakeRagLlm(DoubaoPersona());
  std::vector<KnowledgeItem> knowledge = {
      MakeKnowledge("SELECT COUNT(*) FROM customer, nation, orders WHERE "
                    "o_custkey = c_custkey AND n_nationkey = c_nationkey AND "
                    "n_name = 'france' AND c_mktsegment = 'building' AND "
                    "o_orderstatus = 'f'"),
      MakeKnowledge("SELECT c_name FROM customer WHERE c_custkey = 5")};
  Prompt p = MakePrompt(
      "SELECT COUNT(*) FROM customer, nation, orders WHERE o_custkey = "
      "c_custkey AND n_nationkey = c_nationkey AND n_name = 'egypt' AND "
      "c_mktsegment = 'machinery' AND o_orderstatus = 'p'",
      knowledge);
  GeneratedExplanation out = llm->Explain(p);
  EXPECT_FALSE(out.claims.is_none);
  EXPECT_EQ(out.claims.claimed_faster, p.question_result);
  EXPECT_FALSE(out.claims.compared_costs);
  EXPECT_FALSE(out.claims.factors.empty());
  // The claims are recoverable from the text itself.
  ExplanationClaims parsed = ClaimsFromText(out.text);
  EXPECT_EQ(parsed.factors.size(), out.claims.factors.size());
}

TEST_F(LlmModelTest, RagReturnsNoneOnIrrelevantKnowledge) {
  auto llm = MakeRagLlm(DoubaoPersona());
  // Knowledge about a TP-winning point lookup cannot explain an AP-winning
  // join (result mismatch zeroes the signature similarity).
  std::vector<KnowledgeItem> knowledge = {
      MakeKnowledge("SELECT c_name FROM customer WHERE c_custkey = 5")};
  Prompt p = MakePrompt(
      "SELECT COUNT(*) FROM customer, nation, orders WHERE o_custkey = "
      "c_custkey AND n_nationkey = c_nationkey AND n_name = 'egypt' AND "
      "c_mktsegment = 'machinery' AND o_orderstatus = 'p'",
      knowledge);
  GeneratedExplanation out = llm->Explain(p);
  // Either an explicit None or (rarely) a heuristic free-wheel; never an
  // adoption of the mismatched knowledge as-is with high confidence.
  if (!out.claims.is_none) {
    EXPECT_EQ(out.claims.claimed_faster, p.question_result);
  } else {
    EXPECT_EQ(out.text, "None");
  }
}

TEST_F(LlmModelTest, RagNeverComparesCosts) {
  auto llm = MakeRagLlm(DoubaoPersona());
  for (const char* sql :
       {"SELECT c_name FROM customer WHERE c_custkey = 7",
        "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 3"}) {
    Prompt p = MakePrompt(sql, {});
    EXPECT_FALSE(llm->Explain(p).claims.compared_costs) << sql;
  }
}

TEST_F(LlmModelTest, DbgPtExhibitsFailureModes) {
  auto llm = MakeDbgPtLlm(DoubaoPersona());
  // Over a set of queries, the baseline must show cost leaks and columnar
  // overemphasis somewhere.
  int cost_leaks = 0, columnar_first = 0;
  const char* sqls[] = {
      "SELECT COUNT(*) FROM customer, nation, orders WHERE o_custkey = "
      "c_custkey AND n_nationkey = c_nationkey AND n_name = 'egypt'",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND c_mktsegment = 'building'",
      "SELECT COUNT(*) FROM supplier, nation WHERE s_nationkey = n_nationkey",
      "SELECT n_name, COUNT(*) FROM nation, customer WHERE n_nationkey = "
      "c_nationkey GROUP BY n_name",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND o_orderstatus = 'p'",
      "SELECT COUNT(*) FROM part, partsupp WHERE ps_partkey = p_partkey",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND c_acctbal > 100",
      "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey"};
  for (const char* sql : sqls) {
    GeneratedExplanation out = llm->Explain(MakePrompt(sql, {}));
    if (out.claims.compared_costs) ++cost_leaks;
    if (!out.claims.factors.empty() &&
        out.claims.factors[0] == PerfFactor::kColumnarScanWidth) {
      ++columnar_first;
    }
  }
  EXPECT_GT(cost_leaks, 0);
  EXPECT_GT(columnar_first, 4);  // overemphasis: leads with columnar storage
}

TEST_F(LlmModelTest, DbgPtMisreadsFunctionOverIndex) {
  auto llm = MakeDbgPtLlm(DoubaoPersona());
  Prompt p = MakePrompt(
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND SUBSTRING(c_phone, 1, 2) IN ('20','40','22')",
      {});
  GeneratedExplanation out = llm->Explain(p);
  // The paper's fundamental error: claims index benefits although the
  // substring predicate defeats any index.
  bool claimed_index = false;
  for (PerfFactor f : out.claims.factors) {
    claimed_index = claimed_index || f == PerfFactor::kIndexPointLookup;
  }
  EXPECT_TRUE(claimed_index);
}

}  // namespace
}  // namespace htapex
