#include <gtest/gtest.h>

#include "common/rng.h"
#include "rag/kb_manager.h"

namespace htapex {
namespace {

KbCandidate Candidate(std::vector<double> embedding, std::string sql) {
  KbCandidate c;
  c.embedding = std::move(embedding);
  c.sql = std::move(sql);
  return c;
}

TEST(KbManagerTest, SelectsOnePerCluster) {
  // Three tight clusters; k=3 must pick one member from each.
  std::vector<KbCandidate> candidates;
  for (int cluster = 0; cluster < 3; ++cluster) {
    for (int i = 0; i < 10; ++i) {
      double base = cluster * 100.0;
      candidates.push_back(Candidate(
          {base + i * 0.01, base - i * 0.01},
          "c" + std::to_string(cluster) + "_" + std::to_string(i)));
    }
  }
  std::vector<int> picks = KbManager::SelectRepresentatives(candidates, 3, 5);
  ASSERT_EQ(picks.size(), 3u);
  std::set<int> clusters;
  for (int p : picks) clusters.insert(p / 10);
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(KbManagerTest, KLargerThanPoolReturnsAll) {
  std::vector<KbCandidate> candidates = {Candidate({0, 0}, "a"),
                                         Candidate({1, 1}, "b")};
  auto picks = KbManager::SelectRepresentatives(candidates, 10);
  EXPECT_EQ(picks.size(), 2u);
  EXPECT_TRUE(KbManager::SelectRepresentatives({}, 5).empty());
  EXPECT_TRUE(KbManager::SelectRepresentatives(candidates, 0).empty());
}

TEST(KbManagerTest, DeterministicForSeed) {
  Rng rng(3);
  std::vector<KbCandidate> candidates;
  for (int i = 0; i < 50; ++i) {
    candidates.push_back(
        Candidate({rng.UniformReal(0, 10), rng.UniformReal(0, 10)},
                  "q" + std::to_string(i)));
  }
  auto a = KbManager::SelectRepresentatives(candidates, 8, 7);
  auto b = KbManager::SelectRepresentatives(candidates, 8, 7);
  EXPECT_EQ(a, b);
}

KbEntry Entry(std::vector<double> embedding, std::string sql) {
  KbEntry e;
  e.embedding = std::move(embedding);
  e.sql = std::move(sql);
  e.expert_explanation = "x";
  return e;
}

TEST(KbManagerTest, ExpiryKeepsFrequentlyUsedEntries) {
  KnowledgeBase kb(2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        kb.Insert(Entry({static_cast<double>(i), 0}, "q" + std::to_string(i)))
            .ok());
  }
  // Heavily retrieve near entries 7, 8, 9.
  for (int reps = 0; reps < 5; ++reps) {
    for (double x : {7.0, 8.0, 9.0}) {
      kb.Retrieve({x, 0}, 1);
    }
  }
  EXPECT_EQ(kb.RetrievalHits(8), 5);
  EXPECT_EQ(kb.RetrievalHits(0), 0);
  auto removed = KbManager::ShrinkTo(&kb, 3);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 7);
  EXPECT_EQ(kb.size(), 3u);
  // The used entries survive.
  EXPECT_NE(kb.Get(7), nullptr);
  EXPECT_NE(kb.Get(8), nullptr);
  EXPECT_NE(kb.Get(9), nullptr);
  EXPECT_EQ(kb.Get(0), nullptr);
}

TEST(KbManagerTest, ExpiryTieBreaksByAge) {
  KnowledgeBase kb(1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(kb.Insert(Entry({static_cast<double>(i)}, "q")).ok());
  }
  // No retrievals: all hits are 0, so the two oldest (ids 0, 1) go first.
  auto stale = KbManager::SelectStale(kb, 2);
  ASSERT_EQ(stale.size(), 2u);
  EXPECT_EQ(stale[0], 0);
  EXPECT_EQ(stale[1], 1);
}

TEST(KbManagerTest, NoExpiryWhenAlreadySmall) {
  KnowledgeBase kb(1);
  kb.Insert(Entry({1}, "q")).status();
  EXPECT_TRUE(KbManager::SelectStale(kb, 5).empty());
  auto removed = KbManager::ShrinkTo(&kb, 5);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0);
}

}  // namespace
}  // namespace htapex
