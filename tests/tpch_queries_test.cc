#include <gtest/gtest.h>

#include "engine/htap_system.h"
#include "workload/tpch_queries.h"

namespace htapex {
namespace {

class TpchQueriesTest : public ::testing::TestWithParam<TpchQuery> {
 protected:
  static void SetUpTestSuite() {
    plan_system_ = new HtapSystem();
    HtapConfig plan_config;
    plan_config.data_scale_factor = 0.0;  // SF=100 statistics, plan-only
    ASSERT_TRUE(plan_system_->Init(plan_config).ok());

    exec_system_ = new HtapSystem();
    HtapConfig exec_config;
    exec_config.stats_scale_factor = 0.01;
    exec_config.data_scale_factor = 0.01;  // really execute
    ASSERT_TRUE(exec_system_->Init(exec_config).ok());
  }
  static void TearDownTestSuite() {
    delete plan_system_;
    delete exec_system_;
    plan_system_ = nullptr;
    exec_system_ = nullptr;
  }
  static HtapSystem* plan_system_;
  static HtapSystem* exec_system_;
};

HtapSystem* TpchQueriesTest::plan_system_ = nullptr;
HtapSystem* TpchQueriesTest::exec_system_ = nullptr;

TEST_P(TpchQueriesTest, PlansOnBothEngines) {
  const TpchQuery& q = GetParam();
  auto bound = plan_system_->Bind(q.sql);
  ASSERT_TRUE(bound.ok()) << q.id << ": " << bound.status();
  auto plans = plan_system_->PlanBoth(*bound);
  ASSERT_TRUE(plans.ok()) << q.id << ": " << plans.status();
  // Analytical benchmark queries at SF=100 all favour the AP engine.
  EXPECT_GT(plan_system_->LatencyMs(plans->tp), 0);
  EXPECT_GT(plan_system_->LatencyMs(plans->ap), 0);
}

TEST_P(TpchQueriesTest, ExecutesIdenticallyOnBothEngines) {
  const TpchQuery& q = GetParam();
  auto outcome = exec_system_->RunQuery(q.sql);
  ASSERT_TRUE(outcome.ok()) << q.id << ": " << outcome.status();
  ASSERT_TRUE(outcome->tp_result.has_value());
  EXPECT_TRUE(outcome->results_match)
      << q.id << ": TP rows " << outcome->tp_result->rows.size() << ", AP rows "
      << outcome->ap_result->rows.size();
}

INSTANTIATE_TEST_SUITE_P(
    AdaptedSuite, TpchQueriesTest,
    ::testing::ValuesIn(AdaptedTpchQueries()),
    [](const ::testing::TestParamInfo<TpchQuery>& info) {
      return info.param.id;
    });

TEST(TpchQueriesMetaTest, SuiteIsNonTrivial) {
  const auto& queries = AdaptedTpchQueries();
  EXPECT_GE(queries.size(), 8u);
  for (const TpchQuery& q : queries) {
    EXPECT_FALSE(q.sql.empty()) << q.id;
    EXPECT_FALSE(q.adaptation.empty()) << q.id;
  }
}

TEST(TpchQueriesMetaTest, Q1ProducesKnownGroups) {
  HtapSystem system;
  HtapConfig config;
  config.stats_scale_factor = 0.01;
  config.data_scale_factor = 0.01;
  ASSERT_TRUE(system.Init(config).ok());
  auto outcome = system.RunQuery(AdaptedTpchQueries()[0].sql);  // Q1
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // 3 return flags x 2 line statuses = up to 6 groups.
  EXPECT_GE(outcome->tp_result->rows.size(), 4u);
  EXPECT_LE(outcome->tp_result->rows.size(), 6u);
  EXPECT_TRUE(outcome->results_match);
}

}  // namespace
}  // namespace htapex
