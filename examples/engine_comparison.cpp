// Runs a mixed synthetic workload through both engines, shows per-pattern
// engine wins and the smart router's routing decisions — the scenario from
// the paper's introduction: "users often need guidance on selecting the
// optimal engine".
#include <cstdio>
#include <map>

#include "common/string_util.h"
#include "engine/htap_system.h"
#include "router/smart_router.h"
#include "workload/query_generator.h"

int main() {
  using namespace htapex;

  HtapSystem system;
  HtapConfig config;
  config.data_scale_factor = 0.0;  // plan + latency model only
  if (!system.Init(config).ok()) return 1;

  // Train the smart router on one workload...
  SmartRouter router(7);
  {
    QueryGenerator train_gen(config.stats_scale_factor, 1001);
    std::vector<PairExample> dataset;
    for (const GeneratedQuery& gq : train_gen.GenerateMix(300)) {
      auto bound = system.Bind(gq.sql);
      if (!bound.ok()) continue;
      auto plans = system.PlanBoth(*bound);
      if (!plans.ok()) continue;
      EngineKind faster =
          system.LatencyMs(plans->tp) <= system.LatencyMs(plans->ap)
              ? EngineKind::kTp
              : EngineKind::kAp;
      dataset.push_back(router.MakeExample(*plans, faster));
    }
    RouterTrainStats stats = router.Train(dataset, 60);
    std::printf("router trained: %.1f%% train accuracy, %zu bytes, %.2fs\n\n",
                100 * stats.train_accuracy, router.model_bytes(),
                stats.wall_seconds);
  }

  // ...and evaluate routing on a fresh one, per pattern.
  struct PatternStats {
    int n = 0;
    int ap_wins = 0;
    int routed_correctly = 0;
    double tp_ms_sum = 0, ap_ms_sum = 0;
  };
  std::map<QueryPattern, PatternStats> stats;
  QueryGenerator test_gen(config.stats_scale_factor, 2002);
  for (const GeneratedQuery& gq : test_gen.GenerateMix(200)) {
    auto bound = system.Bind(gq.sql);
    if (!bound.ok()) continue;
    auto plans = system.PlanBoth(*bound);
    if (!plans.ok()) continue;
    double tp_ms = system.LatencyMs(plans->tp);
    double ap_ms = system.LatencyMs(plans->ap);
    EngineKind faster = tp_ms <= ap_ms ? EngineKind::kTp : EngineKind::kAp;
    PatternStats& ps = stats[gq.pattern];
    ++ps.n;
    ps.ap_wins += faster == EngineKind::kAp ? 1 : 0;
    ps.routed_correctly += router.Route(*plans) == faster ? 1 : 0;
    ps.tp_ms_sum += tp_ms;
    ps.ap_ms_sum += ap_ms;
  }

  std::printf("%-20s %4s %9s %9s %10s %10s %8s\n", "pattern", "n", "AP wins",
              "routing", "avg TP", "avg AP", "speedup");
  int total = 0, correct = 0;
  for (const auto& [pattern, ps] : stats) {
    double tp_avg = ps.tp_ms_sum / ps.n;
    double ap_avg = ps.ap_ms_sum / ps.n;
    std::printf("%-20s %4d %8.0f%% %8.0f%% %10s %10s %7.1fx\n",
                QueryPatternName(pattern), ps.n, 100.0 * ps.ap_wins / ps.n,
                100.0 * ps.routed_correctly / ps.n,
                FormatMillis(tp_avg).c_str(), FormatMillis(ap_avg).c_str(),
                std::max(tp_avg, ap_avg) / std::max(1e-9, std::min(tp_avg, ap_avg)));
    total += ps.n;
    correct += ps.routed_correctly;
  }
  std::printf("\noverall routing accuracy: %.1f%% over %d queries\n",
              100.0 * correct / total, total);
  return 0;
}
