// Interactive CLI: type SQL, get both engines' plans, modelled latencies,
// and the RAG-grounded explanation — the user-facing surface the paper's
// framework ultimately serves. Reads from stdin (one query per line,
// ';'-terminated lines also accepted), or runs a demo script with --demo.
//
// Commands:
//   \demo            run three showcase queries
//   \kb              list knowledge-base entries
//   \report <sql>    full markdown report for one query
//   \q               quit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/htap_explainer.h"
#include "core/report.h"
#include "common/string_util.h"

namespace {

using namespace htapex;

void ExplainOne(HtapExplainer* explainer, const std::string& sql) {
  auto result = explainer->Explain(sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("TP: %-10s AP: %-10s -> %s is faster (%.1fx)\n",
              FormatMillis(result->outcome.tp_latency_ms).c_str(),
              FormatMillis(result->outcome.ap_latency_ms).c_str(),
              EngineName(result->outcome.faster), result->outcome.speedup());
  std::printf("retrieved %zu similar cases; simulated response %.1fs\n",
              result->retrieval.items.size(),
              result->end_to_end_ms() / 1000.0);
  std::printf("\n%s\n", result->generation.text.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  HtapSystem system;
  HtapConfig sys_config;
  sys_config.data_scale_factor = 0.0;
  if (!system.Init(sys_config).ok()) return 1;

  ExplainerConfig config;
  HtapExplainer explainer(&system, config);
  std::printf("training smart router...\n");
  auto train = explainer.TrainRouter();
  if (!train.ok()) return 1;
  if (!explainer.BuildDefaultKnowledgeBase().ok()) return 1;
  std::printf("ready: router %.0f%% train accuracy, KB %zu entries, K=%d\n\n",
              100 * train->train_accuracy, explainer.knowledge_base().size(),
              explainer.config().retrieval_k);

  const char* demo[] = {
      "SELECT c_name FROM customer WHERE c_custkey = 42",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND c_mktsegment = 'machinery' AND o_orderstatus = 'p'",
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10",
  };
  bool demo_mode = argc > 1 && std::strcmp(argv[1], "--demo") == 0;
  if (demo_mode || !isatty(0)) {
    // Non-interactive: run the demo script (keeps `for b in ...` runnable).
    for (const char* sql : demo) {
      std::printf("htapex> %s\n", sql);
      ExplainOne(&explainer, sql);
      std::printf("\n");
    }
    return 0;
  }

  std::string line;
  std::printf("htapex> ");
  while (std::getline(std::cin, line)) {
    std::string sql(Trim(line));
    if (sql == "\\q" || sql == "quit" || sql == "exit") break;
    if (sql == "\\demo") {
      for (const char* d : demo) {
        std::printf("htapex> %s\n", d);
        ExplainOne(&explainer, d);
      }
    } else if (sql == "\\kb") {
      for (const KbEntry* e : explainer.knowledge_base().Entries()) {
        std::printf("[%2d] %s faster | %.60s...\n", e->id,
                    EngineName(e->faster), e->sql.c_str());
      }
    } else if (sql.rfind("\\report ", 0) == 0) {
      auto result = explainer.Explain(sql.substr(8));
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        std::printf("%s\n",
                    RenderExplainReport(explainer, *result).c_str());
      }
    } else if (!sql.empty()) {
      ExplainOne(&explainer, sql);
    }
    std::printf("\nhtapex> ");
  }
  return 0;
}
