// Interactive CLI: type SQL, get both engines' plans, modelled latencies,
// and the RAG-grounded explanation — the user-facing surface the paper's
// framework ultimately serves. Reads from stdin (one query per line,
// ';'-terminated lines also accepted), or runs a demo script with --demo.
//
// Batch serving: `htapex_cli --serve [workers]` pushes every stdin line
// (or the demo queries, repeated, on a tty) through the concurrent
// ExplainService and prints one line per result plus the service stats —
// worker-pool throughput and cache hit rate included.
//
// Sharded serving: `htapex_cli --serve [dispatchers] --shards=N` runs the
// same batch through a ShardedExplainService tier — N consistent-hash
// shards with health-checked failover (src/service/sharded_service.h).
// Each result line names the shard that answered and whether it failed
// over; the summary prints the bucket-merged tier stats, the failover
// counters, and the tier exposition. With --data-dir=PATH each shard
// persists under PATH/shard-<i> and expert corrections replicate to a
// successor shard before they are acknowledged. The tier-level fault
// points (shard.kill, shard.stall, replicate.drop) can be armed through
// the same --faults= spec.
//
// Self-healing model lifecycle (src/lifecycle/):
//   --lifecycle      arm the router's drift-retrain-shadow-swap-rollback
//                    loop. Interactive queries feed its execution-feedback
//                    buffer; in --serve mode every shard/service runs its
//                    own manager. With --data-dir the feedback log persists
//                    under PATH/lifecycle (per-shard under each shard dir).
//
// Commands:
//   \demo            run three showcase queries
//   \kb              list knowledge-base entries
//   \lifecycle       lifecycle stats + deterministic event log
//   \swap            force a retrain cycle now (shadow-gated hot-swap)
//   \rollback        roll back to the retained pre-swap snapshot
//   \report <sql>    full markdown report for one query
//   \trace [sql]     span tree of the last (or a fresh) request — every
//                    pipeline stage with its share of end_to_end_ms, plus
//                    retry/breaker/fallback events
//   \metrics         Prometheus-text metrics (per-span latency summaries,
//                    resilience counters); --serve prints the full service
//                    exposition after the batch
//   \q               quit
//
// Tracing:
//   --trace-log=MS   log the full span tree of any request slower than MS
//                    (slow-request log; also sets the service threshold in
//                    --serve mode)
//
// Fault injection (resilience demos / chaos drills):
//   --faults="llm.transient_error:p=0.2;llm.timeout:p=0.1,lat=500"
//   --fault-seed=1337
// activate deterministic fault points in the simulated LLM and the
// knowledge base (see src/common/fault.h for the point registry). The
// explanation pipeline degrades instead of failing: RAG -> DBG-PT
// baseline -> plan-diff report; degraded answers are tagged in the output.
// --faults=off forces a clean run even when HTAPEX_FAULTS is set.
//
// Durability (crash-safe knowledge base, see src/durable/):
//   --data-dir=PATH   persist every KB mutation to a checksummed WAL with
//                     periodic atomic snapshots under PATH. On startup, if
//                     PATH holds state the KB is recovered from it (the
//                     default curated KB is NOT rebuilt); otherwise PATH is
//                     initialized from the default KB.
//   --recover         require recovery: fail instead of initializing a
//                     fresh directory (guards against a typo'd path
//                     silently starting empty).
// Extra interactive commands with --data-dir:
//   \correct <id> <text>  replace an entry's explanation (logged + durable)
//   \expire <id>          tombstone an entry (logged + durable)
//   \snapshot             install a snapshot now and report durability stats
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <atomic>
#include <thread>

#include "core/htap_explainer.h"
#include "core/report.h"
#include "common/string_util.h"
#include "durable/durable_kb.h"
#include "lifecycle/model_lifecycle.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "service/explain_service.h"
#include "service/sharded_service.h"

namespace {

using namespace htapex;

double g_trace_log_ms = 0.0;                 // --trace-log threshold
bool g_lifecycle_enabled = false;            // --lifecycle
ModelLifecycleManager* g_lifecycle = nullptr;  // interactive-mode manager
std::shared_ptr<const Trace> g_last_trace;   // \trace without arguments
TraceMetrics g_trace_metrics;                // feeds \metrics
uint64_t g_next_trace_id = 0;

void ExplainOne(HtapExplainer* explainer, const std::string& sql) {
  auto trace = std::make_shared<Trace>(++g_next_trace_id, sql);
  auto result = explainer->Explain(sql, trace.get());
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (g_lifecycle != nullptr) {
    g_lifecycle->RecordOutcome(result->outcome.plans, result->outcome.faster);
  }
  g_trace_metrics.Record(*trace);
  if (g_trace_log_ms > 0.0 && trace->total_ms() >= g_trace_log_ms) {
    g_trace_metrics.slow_traces.Inc();
    std::printf("slow request (>= %.0f ms):\n%s\n", g_trace_log_ms,
                trace->ToString().c_str());
  }
  g_last_trace = std::move(trace);
  std::printf("TP: %-10s AP: %-10s -> %s is faster (%.1fx)\n",
              FormatMillis(result->outcome.tp_latency_ms).c_str(),
              FormatMillis(result->outcome.ap_latency_ms).c_str(),
              EngineName(result->outcome.faster), result->outcome.speedup());
  std::printf("retrieved %zu similar cases; simulated response %.1fs\n",
              result->retrieval.items.size(),
              result->end_to_end_ms() / 1000.0);
  if (result->degradation != DegradationLevel::kFull) {
    std::printf("DEGRADED (%s): %s\n",
                DegradationLevelName(result->degradation),
                result->degradation_reason.c_str());
  }
  std::printf("\n%s\n", result->generation.text.c_str());
}

/// --serve: batch mode over the concurrent service. Queries come from
/// stdin (one per line; ';' suffix tolerated), or the demo set repeated 4x
/// when stdin is a terminal so the cache has something to hit.
int RunServe(HtapExplainer* explainer, DurableKnowledgeBase* durable,
             int workers, const std::string& data_dir, const char* const* demo,
             size_t demo_count) {
  ServiceConfig config;
  config.num_workers = workers;
  config.durable = durable;
  config.slow_trace_ms = g_trace_log_ms;
  if (g_lifecycle_enabled) {
    config.lifecycle.enabled = true;
    if (!data_dir.empty()) config.lifecycle.data_dir = data_dir + "/lifecycle";
  }
  ExplainService service(explainer, config);

  std::vector<std::string> sqls;
  if (isatty(0)) {
    for (int round = 0; round < 4; ++round) {
      for (size_t i = 0; i < demo_count; ++i) sqls.push_back(demo[i]);
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      std::string sql(Trim(line));
      if (!sql.empty() && sql.back() == ';') sql.pop_back();
      if (!sql.empty()) sqls.push_back(std::move(sql));
    }
  }
  if (sqls.empty()) {
    std::printf("--serve: no queries on stdin\n");
    return 0;
  }

  std::printf("serving %zu queries on %d workers...\n", sqls.size(), workers);
  auto futures = service.SubmitBatch(sqls);
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    if (!result.ok()) {
      std::printf("[%3zu] error: %s\n", i, result.status().ToString().c_str());
      continue;
    }
    std::printf("[%3zu] %-5s %s faster  %-6s  %s  %-17s  %.60s\n", i,
                result->from_cache ? "cache" : "fresh",
                EngineName(result->outcome.faster),
                FormatMillis(result->end_to_end_ms()).c_str(),
                ExplanationGradeName(result->grade.grade),
                DegradationLevelName(result->degradation),
                result->outcome.sql.c_str());
  }
  std::printf("\n=== service stats ===\n%s\n",
              service.Stats().ToString().c_str());
  if (ModelLifecycleManager* lifecycle = service.lifecycle()) {
    std::printf("\n=== lifecycle events ===\n");
    for (const std::string& event : lifecycle->EventLog()) {
      std::printf("  %s\n", event.c_str());
    }
  }
  std::printf("\n=== metrics (Prometheus text) ===\n%s",
              service.ExpositionText().c_str());
  auto recent = service.RecentTraces();
  if (!recent.empty()) {
    std::printf("\n=== most recent trace ===\n%s\n",
                recent.front()->ToString().c_str());
  }
  return 0;
}

/// --serve --shards=N: the batch goes through the sharded tier instead of
/// one service. `dispatchers` caller threads drive the synchronous
/// Explain() front end (each shard still runs its own worker pool), with a
/// health-monitor beat woven in every few arrivals.
int RunServeSharded(const HtapSystem* system, const ExplainerConfig& ec,
                    const SmartRouter& trained, int shards, int dispatchers,
                    const std::string& data_dir, const char* const* demo,
                    size_t demo_count) {
  ShardedServiceConfig config;
  config.num_shards = shards;
  config.data_dir = data_dir;
  config.faults = ec.faults;
  config.fault_seed = ec.fault_seed;
  config.shard.slow_trace_ms = g_trace_log_ms;
  config.shard.lifecycle.enabled = g_lifecycle_enabled;
  ShardedExplainService tier(system, ec, config);
  Status st = tier.InitFrom(trained);
  if (!st.ok()) {
    std::fprintf(stderr, "tier init failed: %s\n", st.ToString().c_str());
    return 1;
  }
  // Recovered shards already carry their state; only a fresh tier gets the
  // default curated knowledge partitioned across its shards.
  if (data_dir.empty() ||
      !DurableKnowledgeBase::HasState(data_dir + "/shard-0")) {
    st = tier.BuildDefaultKnowledgeBase();
    if (!st.ok()) {
      std::fprintf(stderr, "kb build failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::vector<std::string> sqls;
  if (isatty(0)) {
    for (int round = 0; round < 4; ++round) {
      for (size_t i = 0; i < demo_count; ++i) sqls.push_back(demo[i]);
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      std::string sql(Trim(line));
      if (!sql.empty() && sql.back() == ';') sql.pop_back();
      if (!sql.empty()) sqls.push_back(std::move(sql));
    }
  }
  if (sqls.empty()) {
    std::printf("--serve: no queries on stdin\n");
    return 0;
  }

  std::printf("serving %zu queries across %d shards (%d dispatchers)...\n",
              sqls.size(), shards, dispatchers);
  std::vector<std::string> lines(sqls.size());
  std::atomic<size_t> cursor{0};
  auto dispatch = [&]() {
    for (size_t i = cursor.fetch_add(1); i < sqls.size();
         i = cursor.fetch_add(1)) {
      auto r = tier.Explain(sqls[i]);
      if (!r.ok()) {
        lines[i] = "error: " + r.status().ToString();
        continue;
      }
      lines[i] = StrFormat(
          "shard %d%-11s %-5s %-6s %-17s %.60s", r->failover.final_shard,
          r->failover.failed_over ? " (failover)" : "",
          r->result.from_cache ? "cache" : "fresh",
          FormatMillis(r->result.end_to_end_ms()).c_str(),
          DegradationLevelName(r->result.degradation),
          r->result.outcome.sql.c_str());
      if (i % 8 == 7) tier.Heartbeat();
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < dispatchers; ++t) pool.emplace_back(dispatch);
  for (std::thread& t : pool) t.join();
  for (size_t i = 0; i < lines.size(); ++i) {
    std::printf("[%3zu] %s\n", i, lines[i].c_str());
  }

  ShardedServiceStats stats = tier.Stats();
  std::printf("\n=== tier stats (bucket-merged over %d shards) ===\n%s\n",
              shards, stats.merged.ToString().c_str());
  std::printf(
      "failover: requests=%llu failovers=%llu ejections=%llu "
      "readmissions=%llu kills=%llu replications=%llu aborts=%llu "
      "live=%d/%d beats=%llu\n",
      static_cast<unsigned long long>(stats.failover.requests),
      static_cast<unsigned long long>(stats.failover.failovers),
      static_cast<unsigned long long>(stats.failover.ejections),
      static_cast<unsigned long long>(stats.failover.readmissions),
      static_cast<unsigned long long>(stats.failover.kills),
      static_cast<unsigned long long>(stats.failover.replications),
      static_cast<unsigned long long>(stats.failover.replicate_aborts),
      stats.live_shards, shards,
      static_cast<unsigned long long>(stats.heartbeats));
  for (const std::string& event : tier.EventLog()) {
    std::printf("  event: %s\n", event.c_str());
  }
  std::printf("\n=== metrics (Prometheus text) ===\n%s",
              tier.ExpositionText().c_str());
  return 0;
}

/// \metrics outside --serve: the interactive path has no service, so it
/// renders the explainer-side counters and the traces ExplainOne recorded.
std::string InteractiveMetricsText(const HtapExplainer& explainer) {
  ExpositionBuilder b;
  ResilienceStats r = explainer.ResilienceSnapshot();
  b.Counter("htapex_llm_attempts_total", "Simulated-LLM call attempts",
            r.llm_attempts);
  b.Counter("htapex_llm_retries_total", "Attempts beyond the first",
            r.llm_retries);
  b.Counter("htapex_breaker_short_circuits_total",
            "Calls rejected while a breaker was open",
            r.breaker_short_circuits);
  TraceMetrics::Stats t = g_trace_metrics.Snap();
  b.Counter("htapex_traces_recorded_total", "Completed request traces",
            t.traces);
  b.Counter("htapex_slow_traces_total",
            "Traces above the --trace-log threshold", t.slow_traces);
  const char* kSpanHelp = "Per-span latency summaries from request traces";
  for (const TraceMetrics::SpanStat& span : t.spans) {
    b.Summary("htapex_span_latency_ms", kSpanHelp, span.hist,
              {{"span", span.name}});
  }
  return b.Text();
}

}  // namespace

int main(int argc, char** argv) {
  HtapSystem system;
  HtapConfig sys_config;
  sys_config.data_scale_factor = 0.0;
  if (!system.Init(sys_config).ok()) return 1;

  ExplainerConfig config;
  std::string data_dir;
  bool require_recovery = false;
  int shard_count = 1;
  // Pull --faults= / --fault-seed= / --data-dir= / --recover out of argv
  // wherever they appear; the remaining positional args keep their
  // existing meaning.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--data-dir=", 11) == 0) {
      data_dir = argv[i] + 11;
      if (data_dir.empty()) {
        std::fprintf(stderr, "--data-dir needs a path\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      require_recovery = true;
    } else if (std::strcmp(argv[i], "--lifecycle") == 0) {
      g_lifecycle_enabled = true;
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      config.faults = argv[i] + 9;
      if (config.faults.empty()) config.faults = "off";
      // Validate eagerly: a typo'd point name should fail the invocation,
      // not silently fall back to a clean run.
      auto parsed = FaultInjector::Parse(
          config.faults == "off" ? "" : config.faults, config.fault_seed);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --faults: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      config.fault_seed =
          static_cast<uint64_t>(std::strtoull(argv[i] + 13, nullptr, 10));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shard_count = std::atoi(argv[i] + 9);
      if (shard_count < 1) {
        std::fprintf(stderr, "--shards needs a positive shard count\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--trace-log=", 12) == 0) {
      g_trace_log_ms = std::strtod(argv[i] + 12, nullptr);
      if (g_trace_log_ms <= 0.0) {
        std::fprintf(stderr, "--trace-log needs a positive ms threshold\n");
        return 2;
      }
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  HtapExplainer explainer(&system, config);
  if (explainer.faults().enabled()) {
    std::printf("fault injection: %s (seed %llu)\n",
                explainer.faults().ToString().c_str(),
                static_cast<unsigned long long>(explainer.faults().seed()));
  }
  if (require_recovery && data_dir.empty()) {
    std::fprintf(stderr, "--recover needs --data-dir=PATH\n");
    return 2;
  }
  std::printf("training smart router...\n");
  auto train = explainer.TrainRouter();
  if (!train.ok()) return 1;

  // Crash-safe KB persistence: recover from --data-dir when it has state,
  // otherwise seed it from the default curated KB (unless --recover, which
  // treats an uninitialized directory as an error). With --shards=N the
  // tier owns both the knowledge and its persistence (per-shard dirs), so
  // the standalone explainer stays empty.
  std::unique_ptr<DurableKnowledgeBase> durable;
  if (shard_count > 1) {
    // handled in RunServeSharded
  } else if (!data_dir.empty()) {
    DurabilityOptions dopt;
    dopt.dir = data_dir;
    dopt.snapshot_every_n = 32;
    durable = std::make_unique<DurableKnowledgeBase>(dopt);
    if (explainer.faults().enabled()) {
      durable->set_fault_injector(&explainer.faults());
    }
    bool has_state = DurableKnowledgeBase::HasState(data_dir);
    if (!has_state) {
      if (require_recovery) {
        std::fprintf(stderr, "--recover: no durable state in %s\n",
                     data_dir.c_str());
        return 2;
      }
      if (!explainer.BuildDefaultKnowledgeBase().ok()) return 1;
    }
    auto info = durable->Attach(&explainer.mutable_knowledge_base());
    if (!info.ok()) {
      std::fprintf(stderr, "durability attach failed: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    if (info->recovered) {
      std::printf(
          "recovered KB from %s: %zu snapshot entries + %llu WAL records "
          "in %.1f ms%s\n",
          data_dir.c_str(), info->snapshot_entries,
          static_cast<unsigned long long>(info->replayed_records),
          info->recovery_ms,
          info->snapshot_fallbacks > 0 ? " (fell back a generation)" : "");
    } else {
      std::printf("initialized durable KB state in %s\n", data_dir.c_str());
    }
  } else {
    if (!explainer.BuildDefaultKnowledgeBase().ok()) return 1;
  }
  std::printf("ready: router %.0f%% train accuracy, KB %zu entries, K=%d\n\n",
              100 * train->train_accuracy, explainer.knowledge_base().size(),
              explainer.config().retrieval_k);

  const char* demo[] = {
      "SELECT c_name FROM customer WHERE c_custkey = 42",
      "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey "
      "AND c_mktsegment = 'machinery' AND o_orderstatus = 'p'",
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10",
  };
  if (argc > 1 && std::strcmp(argv[1], "--serve") == 0) {
    int workers = argc > 2 ? std::atoi(argv[2]) : 4;
    if (workers < 1) workers = 4;
    if (shard_count > 1) {
      return RunServeSharded(&system, config, explainer.router(), shard_count,
                             workers, data_dir, demo,
                             sizeof(demo) / sizeof(demo[0]));
    }
    return RunServe(&explainer, durable.get(), workers, data_dir, demo,
                    sizeof(demo) / sizeof(demo[0]));
  }
  if (shard_count > 1) {
    std::fprintf(stderr, "--shards applies to --serve mode only\n");
    return 2;
  }

  // Interactive lifecycle: one manager over the explainer's router; every
  // query ExplainOne serves feeds its feedback buffer.
  std::unique_ptr<ModelLifecycleManager> lifecycle;
  if (g_lifecycle_enabled) {
    LifecycleOptions lopt;
    lopt.enabled = true;
    lopt.seed = config.seed;
    if (!data_dir.empty()) lopt.data_dir = data_dir + "/lifecycle";
    lifecycle = std::make_unique<ModelLifecycleManager>(
        &explainer.mutable_router(), lopt);
    lifecycle->set_fault_injector(&explainer.faults());
    lifecycle->set_curation_hook(
        [&explainer](uint64_t* expired, uint64_t* backfilled) {
          return explainer.CurateKnowledgeBase(expired, backfilled);
        });
    Status opened = lifecycle->Open();
    if (!opened.ok()) {
      std::fprintf(stderr, "lifecycle feedback log unavailable: %s\n",
                   opened.ToString().c_str());
    }
    g_lifecycle = lifecycle.get();
    std::printf("lifecycle armed: serving v%llu crc=%08x\n",
                static_cast<unsigned long long>(
                    explainer.router().frozen_version()),
                explainer.router().frozen_crc());
  }
  bool demo_mode = argc > 1 && std::strcmp(argv[1], "--demo") == 0;
  if (demo_mode || !isatty(0)) {
    // Non-interactive: run the demo script (keeps `for b in ...` runnable).
    for (const char* sql : demo) {
      std::printf("htapex> %s\n", sql);
      ExplainOne(&explainer, sql);
      std::printf("\n");
    }
    return 0;
  }

  std::string line;
  std::printf("htapex> ");
  while (std::getline(std::cin, line)) {
    std::string sql(Trim(line));
    if (sql == "\\q" || sql == "quit" || sql == "exit") break;
    if (sql == "\\demo") {
      for (const char* d : demo) {
        std::printf("htapex> %s\n", d);
        ExplainOne(&explainer, d);
      }
    } else if (sql == "\\kb") {
      for (const KbEntry* e : explainer.knowledge_base().Entries()) {
        std::printf("[%2d] %s faster | %.60s...\n", e->id,
                    EngineName(e->faster), e->sql.c_str());
      }
    } else if (sql.rfind("\\correct ", 0) == 0) {
      // \correct <id> <new explanation> — the expert feedback loop,
      // write-ahead logged when --data-dir is active.
      char* end = nullptr;
      long id = std::strtol(sql.c_str() + 9, &end, 10);
      std::string text(Trim(end == nullptr ? "" : end));
      if (text.empty()) {
        std::printf("usage: \\correct <id> <new explanation>\n");
      } else {
        Status st = explainer.mutable_knowledge_base().CorrectExplanation(
            static_cast<int>(id), text);
        std::printf("%s\n", st.ok() ? "corrected" : st.ToString().c_str());
      }
    } else if (sql.rfind("\\expire ", 0) == 0) {
      Status st = explainer.mutable_knowledge_base().Expire(
          std::atoi(sql.c_str() + 8));
      std::printf("%s\n", st.ok() ? "expired" : st.ToString().c_str());
    } else if (sql == "\\snapshot") {
      if (durable == nullptr) {
        std::printf("no durable state (run with --data-dir=PATH)\n");
      } else {
        Status st = durable->Snapshot();
        if (!st.ok()) {
          std::printf("snapshot failed: %s\n", st.ToString().c_str());
        } else {
          std::printf("snapshot installed; %s\n",
                      durable->StatsSnapshot().ToString().c_str());
        }
      }
    } else if (sql == "\\lifecycle") {
      if (lifecycle == nullptr) {
        std::printf("lifecycle off (run with --lifecycle)\n");
      } else {
        std::printf("%s\n", lifecycle->Stats().ToString().c_str());
        for (const std::string& event : lifecycle->EventLog()) {
          std::printf("  %s\n", event.c_str());
        }
      }
    } else if (sql == "\\swap") {
      if (lifecycle == nullptr) {
        std::printf("lifecycle off (run with --lifecycle)\n");
      } else {
        Status st = lifecycle->ForceRetrain();
        if (st.ok()) st = lifecycle->RunToIdle();
        if (!st.ok()) {
          std::printf("swap failed: %s\n", st.ToString().c_str());
        } else {
          std::printf("%s\n", lifecycle->Stats().ToString().c_str());
        }
      }
    } else if (sql == "\\rollback") {
      if (lifecycle == nullptr) {
        std::printf("lifecycle off (run with --lifecycle)\n");
      } else {
        Status st = lifecycle->ForceRollback();
        if (!st.ok()) {
          std::printf("rollback failed: %s\n", st.ToString().c_str());
        } else {
          std::printf("%s\n", lifecycle->Stats().ToString().c_str());
        }
      }
    } else if (sql == "\\trace" || sql.rfind("\\trace ", 0) == 0) {
      if (sql.size() > 7) ExplainOne(&explainer, sql.substr(7));
      if (g_last_trace == nullptr) {
        std::printf("no trace yet — run a query first (or \\trace <sql>)\n");
      } else {
        std::printf("%s\n", g_last_trace->ToString().c_str());
      }
    } else if (sql == "\\metrics") {
      std::printf("%s", InteractiveMetricsText(explainer).c_str());
    } else if (sql.rfind("\\report ", 0) == 0) {
      auto result = explainer.Explain(sql.substr(8));
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        std::printf("%s\n",
                    RenderExplainReport(explainer, *result).c_str());
      }
    } else if (!sql.empty()) {
      ExplainOne(&explainer, sql);
    }
    std::printf("\nhtapex> ");
  }
  return 0;
}
