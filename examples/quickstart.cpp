// Quickstart: bring up the HTAP system, run the paper's Example 1 query on
// both engines, and print plans + modelled latencies. (The full explainer
// pipeline is exercised in engine_comparison.cpp / kb_curation.cpp and the
// benches.)
#include <cstdio>

#include "common/string_util.h"
#include "engine/htap_system.h"

int main() {
  using namespace htapex;
  HtapSystem system;
  HtapConfig config;
  config.stats_scale_factor = 100.0;  // the paper's 100 GB setting
  config.data_scale_factor = 0.02;    // small physical data: queries really run
  Status st = system.Init(config);
  if (!st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const char* sql =
      "SELECT COUNT(*) FROM customer, nation, orders "
      "WHERE SUBSTRING(c_phone, 1, 2) IN ('20','40','22','30','39','42','21') "
      "AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
      "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
      "AND n_nationkey = c_nationkey";

  auto outcome = system.RunQuery(sql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("Query: %s\n\n", sql);
  std::printf("=== TP plan ===\n%s\n",
              outcome->plans.tp.root->ToTreeString().c_str());
  std::printf("=== AP plan ===\n%s\n",
              outcome->plans.ap.root->ToTreeString().c_str());
  std::printf("TP modelled latency: %s\n",
              FormatMillis(outcome->tp_latency_ms).c_str());
  std::printf("AP modelled latency: %s\n",
              FormatMillis(outcome->ap_latency_ms).c_str());
  std::printf("Faster engine: %s (%.1fx)\n", EngineName(outcome->faster),
              outcome->speedup());
  if (outcome->tp_result.has_value()) {
    std::printf("Executed on real data (SF=%.3f): COUNT(*) = %s, engines %s\n",
                config.data_scale_factor,
                outcome->tp_result->rows[0][0].ToString().c_str(),
                outcome->results_match ? "agree" : "DISAGREE");
    std::printf("(COUNT is 0 by TPC-H semantics: c_phone prefixes encode the\n"
                " nation as 10+nationkey, and egypt's prefix '14' is not in\n"
                " the query's IN list — both engines still do all the work of\n"
                " discovering that, which is exactly what differs between\n"
                " them.)\n");
  }
  std::printf("\n=== TP EXPLAIN (Table II format) ===\n%s\n",
              outcome->plans.tp.Explain().c_str());
  std::printf("\n=== AP EXPLAIN (Table II format) ===\n%s\n",
              outcome->plans.ap.Explain().c_str());
  return outcome->results_match ? 0 : 2;
}
