// Knowledge-base curation walkthrough: build the 20-entry expert KB, show
// its contents, exercise the expert feedback loop on failing queries,
// correct an entry, expire a stale one, and persist everything to JSON —
// the maintenance lifecycle the paper's Sections III-B and IV describe.
#include <cstdio>

#include "core/htap_explainer.h"
#include "common/string_util.h"
#include "workload/query_generator.h"

int main() {
  using namespace htapex;

  HtapSystem system;
  HtapConfig sys_config;
  sys_config.data_scale_factor = 0.0;
  if (!system.Init(sys_config).ok()) return 1;

  HtapExplainer explainer(&system, ExplainerConfig{});
  if (!explainer.TrainRouter().ok()) return 1;
  if (!explainer.BuildDefaultKnowledgeBase().ok()) return 1;

  std::printf("=== knowledge base: %zu curated entries ===\n",
              explainer.knowledge_base().size());
  for (const KbEntry* e : explainer.knowledge_base().Entries()) {
    std::printf("[%2d] %s faster (%s vs %s)\n     %.70s...\n     expert: %s\n",
                e->id, EngineName(e->faster),
                FormatMillis(e->tp_latency_ms).c_str(),
                FormatMillis(e->ap_latency_ms).c_str(), e->sql.c_str(),
                e->expert_explanation.c_str());
  }

  // Feedback loop: run exotic queries, collect failures, incorporate
  // expert corrections, and show the accuracy recovering.
  std::printf("\n=== expert feedback loop ===\n");
  QueryGenerator gen(sys_config.stats_scale_factor, 31337);
  std::vector<GeneratedQuery> exotic;
  for (int i = 0; i < 30; ++i) {
    exotic.push_back(gen.Generate(QueryPattern::kExotic));
  }
  int before = 0, corrections = 0;
  for (const auto& gq : exotic) {
    auto result = explainer.Explain(gq.sql);
    if (!result.ok()) return 1;
    if (result->grade.grade == ExplanationGrade::kAccurate) {
      ++before;
    } else {
      ++corrections;
      if (!explainer.IncorporateCorrection(*result).ok()) return 1;
    }
  }
  int after = 0;
  for (const auto& gq : exotic) {
    auto result = explainer.Explain(gq.sql);
    if (result.ok() && result->grade.grade == ExplanationGrade::kAccurate) {
      ++after;
    }
  }
  std::printf("exotic queries accurate before corrections: %d/30\n", before);
  std::printf("corrections incorporated: %d (KB now %zu entries)\n",
              corrections, explainer.knowledge_base().size());
  std::printf("exotic queries accurate after corrections:  %d/30\n", after);

  // Expert edits one explanation and expires a stale entry.
  std::printf("\n=== manual curation ===\n");
  KnowledgeBase& kb = explainer.mutable_knowledge_base();
  const KbEntry* first = kb.Entries().front();
  int first_id = first->id;
  if (!kb.CorrectExplanation(
           first_id, first->expert_explanation +
                         " (Reviewed by the on-call expert on 2026-07-05.)")
           .ok()) {
    return 1;
  }
  std::printf("entry %d annotated by expert.\n", first_id);
  int last_id = kb.Entries().back()->id;
  if (!kb.Expire(last_id).ok()) return 1;
  std::printf("entry %d expired as stale; KB holds %zu live entries.\n",
              last_id, kb.size());

  // Persist and reload.
  std::string path = "/tmp/htapex_kb.json";
  if (!kb.SaveJson(path).ok()) return 1;
  KnowledgeBase reloaded(16);
  if (!reloaded.LoadJson(path).ok()) return 1;
  std::printf("\nsaved to %s and reloaded: %zu entries round-tripped.\n",
              path.c_str(), reloaded.size());
  return 0;
}
