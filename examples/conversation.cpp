// Conversational interface demo (paper Section VI-B closing discussion):
// a user asks why their query is slow on one engine, receives the
// RAG-grounded explanation, and digs deeper with follow-up questions.
#include <cstdio>

#include "core/htap_explainer.h"
#include "common/string_util.h"

int main() {
  using namespace htapex;

  HtapSystem system;
  HtapConfig sys_config;
  sys_config.data_scale_factor = 0.0;
  if (!system.Init(sys_config).ok()) return 1;
  // The paper's user context: an index on c_phone exists.
  IndexDef idx{"idx_c_phone", "customer", {"c_phone"}, false, false};
  if (!system.CreateIndex(idx).ok()) return 1;

  HtapExplainer explainer(&system, ExplainerConfig{});
  if (!explainer.TrainRouter().ok()) return 1;
  if (!explainer.BuildDefaultKnowledgeBase().ok()) return 1;

  const char* sql =
      "SELECT COUNT(*) FROM customer, nation, orders "
      "WHERE SUBSTRING(c_phone, 1, 2) IN ('20','40','22','30','39','42','21') "
      "AND c_mktsegment = 'machinery' AND n_name = 'egypt' "
      "AND o_orderstatus = 'p' AND o_custkey = c_custkey "
      "AND n_nationkey = c_nationkey";

  std::printf("user: Why does my query run so slowly on the TP engine?\n");
  std::printf("      %s\n\n", sql);

  auto result = explainer.Explain(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "assistant: (TP took %s, AP took %s; retrieved %zu similar historical "
      "cases; thought for %.1fs, answered in %.1fs)\n\n%s\n\n",
      FormatMillis(result->outcome.tp_latency_ms).c_str(),
      FormatMillis(result->outcome.ap_latency_ms).c_str(),
      result->retrieval.items.size(),
      result->generation.timing.thinking_ms / 1000.0,
      result->generation.timing.generation_ms / 1000.0,
      result->generation.text.c_str());

  struct Turn {
    const char* question;
  };
  const Turn turns[] = {
      {"Why does the predicate on the customer table not benefit from the "
       "index on c_phone?"},
      {"The TP plan shows cost 5213 and the AP plan shows a much smaller "
       "cost. Can't I just compare those cost numbers?"},
      {"OK. In one sentence, why is it faster?"},
  };
  for (const Turn& turn : turns) {
    std::printf("user: %s\n", turn.question);
    std::printf("assistant: %s\n\n",
                explainer.AnswerFollowUp(*result, turn.question).c_str());
  }
  return 0;
}
